"""Crash-safety tests for the sharded study service.

The acceptance bar is *bit-for-bit determinism under failure*: a sharded
run must merge to exactly the single-process :class:`repro.api.Study`
result, and it must keep doing so when workers are SIGKILLed, when they
hang past the heartbeat timeout, and when the orchestrator itself is
SIGKILLed mid-sweep and resumed from its checkpoint journal.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.algorithms import MidpointAlgorithm
from repro.api import CertifySpec, ScenarioSpec, Study
from repro.core.adversary import GreedyDiameterAdversary
from repro.exceptions import (
    ConfigError,
    ExecutionError,
    FaultModelError,
    ReproError,
    ServiceError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.execution.batch import merge_ensemble_executions
from repro.faults import FaultSpec
from repro.models.patterns import RandomPattern
from repro.models.standard import deaf_model
from repro.service import (
    CheckpointJournal,
    PartialStudyResult,
    RetryPolicy,
    content_key,
    run_certification_sweep_service,
    run_study_service,
)
from repro.service.retry import is_transient_failure


@pytest.fixture()
def ensemble_kwargs():
    model = deaf_model(n=5)
    pattern = RandomPattern(list(model), seed=3)
    values = np.random.default_rng(0).uniform(0, 1, (8, 5, 1))
    return dict(
        algorithm=MidpointAlgorithm(),
        initial_values=values,
        rounds=8,
        pattern=pattern,
    )


def assert_same_result(merged, direct):
    assert np.array_equal(
        merged.execution.recorded_outputs, direct.execution.recorded_outputs
    )
    assert merged.provenance == direct.provenance
    assert merged.execution.fault_plan == direct.execution.fault_plan
    assert len(merged.certificates) == len(direct.certificates)
    for a, b in zip(merged.certificates, direct.certificates):
        assert a.rate_interval == b.rate_interval
        assert a.valency_trace == b.valency_trace
        assert all(
            np.array_equal(x.limits, y.limits)
            for x, y in zip(a.estimates, b.estimates)
        )


# --------------------------------------------------------------------- #
# Bit-for-bit shard merging
# --------------------------------------------------------------------- #


def test_sharded_faulted_certified_study_matches_direct(ensemble_kwargs):
    model = deaf_model(n=5)
    kwargs = dict(
        ensemble_kwargs,
        model=model,
        certify=CertifySpec(suffix_rounds=12),
        faults=FaultSpec(drop=0.2, seed=7, enforce_model=False),
    )
    direct = Study(**kwargs).run()
    records = []
    merged = run_study_service(
        **kwargs, workers=2, shard_size=2, on_shard=records.append
    )
    assert_same_result(merged, direct)
    assert sorted(r.shard for r in records) == [0, 1, 2, 3]
    assert all(r.source == "worker" and r.attempts == 1 for r in records)


def test_identical_shards_deduplicate(ensemble_kwargs):
    # Every scenario is the same row, so every shard body hashes equal:
    # exactly one worker job runs, the rest replay its journaled result.
    values = np.tile(
        np.random.default_rng(1).uniform(0, 1, (1, 5, 1)), (4, 1, 1)
    )
    kwargs = dict(ensemble_kwargs, initial_values=values)
    direct = Study(**kwargs).run()
    records = []
    merged = run_study_service(
        **kwargs, workers=2, shard_size=1, on_shard=records.append
    )
    assert np.array_equal(
        merged.execution.recorded_outputs, direct.execution.recorded_outputs
    )
    assert len({r.key for r in records}) == 1
    assert sum(1 for r in records if r.source == "worker") == 1


# --------------------------------------------------------------------- #
# Worker crash / hang recovery
# --------------------------------------------------------------------- #


def test_sigkilled_worker_is_retried_transparently(ensemble_kwargs, tmp_path):
    direct = Study(**ensemble_kwargs).run()
    marker = str(tmp_path / "kill-shard-1")
    open(marker, "w").close()
    records = []
    merged = run_study_service(
        **ensemble_kwargs,
        workers=2,
        shard_size=2,
        _fault_markers={1: {"kill_marker": marker}},
        on_shard=records.append,
    )
    assert np.array_equal(
        merged.execution.recorded_outputs, direct.execution.recorded_outputs
    )
    attempts = {r.shard: r.attempts for r in records}
    assert attempts[1] == 2, attempts
    assert all(attempts[s] == 1 for s in (0, 2, 3)), attempts
    assert not os.path.exists(marker)


def test_hung_worker_trips_heartbeat_timeout_and_retries(
    ensemble_kwargs, tmp_path
):
    direct = Study(**ensemble_kwargs).run()
    marker = str(tmp_path / "hang-shard-0")
    open(marker, "w").close()
    merged = run_study_service(
        **ensemble_kwargs,
        workers=2,
        shard_size=4,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        _fault_markers={0: {"hang_marker": marker}},
    )
    assert np.array_equal(
        merged.execution.recorded_outputs, direct.execution.recorded_outputs
    )


def test_exhausted_retries_surface_worker_crash(ensemble_kwargs, tmp_path):
    # Markers are consumed on first use, so re-arm the kill on every attempt
    # is impossible; instead allow zero retries and check the strict raise.
    marker = str(tmp_path / "kill-always")
    open(marker, "w").close()
    with pytest.raises(WorkerCrashError):
        run_study_service(
            **ensemble_kwargs,
            workers=2,
            shard_size=4,
            retry=RetryPolicy(max_attempts=1),
            _fault_markers={0: {"kill_marker": marker}},
        )
    partial = run_study_service(
        **ensemble_kwargs,
        workers=2,
        shard_size=4,
        strict=False,
        retry=RetryPolicy(max_attempts=1),
        _fault_markers={1: {"kill_marker": _armed(tmp_path / "kill-2")}},
    )
    assert isinstance(partial, PartialStudyResult)
    assert not partial.complete
    assert partial.result is None
    [failure] = partial.failures
    assert failure.shard == 1
    assert failure.error_type == "WorkerCrashError"
    assert isinstance(failure.error, WorkerCrashError)


def _armed(path):
    open(path, "w").close()
    return str(path)


# --------------------------------------------------------------------- #
# Checkpoint journal: replay, dedup, resume after orchestrator SIGKILL
# --------------------------------------------------------------------- #


def test_journal_replay_serves_every_shard(ensemble_kwargs, tmp_path):
    direct = Study(**ensemble_kwargs).run()
    journal_path = tmp_path / "journal.jsonl"
    run_study_service(
        **ensemble_kwargs, workers=2, shard_size=2, journal=journal_path
    )
    with CheckpointJournal(journal_path) as journal:
        assert len(journal) == 4
    records = []
    merged = run_study_service(
        **ensemble_kwargs,
        workers=2,
        shard_size=2,
        journal=journal_path,
        on_shard=records.append,
    )
    assert all(r.source == "journal" for r in records)
    assert np.array_equal(
        merged.execution.recorded_outputs, direct.execution.recorded_outputs
    )


def test_resume_after_orchestrator_sigkill(ensemble_kwargs, tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    child_code = textwrap.dedent(
        f"""
        import numpy as np
        from repro.algorithms import MidpointAlgorithm
        from repro.models.standard import deaf_model
        from repro.models.patterns import RandomPattern
        from repro.service import run_study_service

        model = deaf_model(n=5)
        pattern = RandomPattern(list(model), seed=3)
        values = np.random.default_rng(0).uniform(0, 1, (8, 5, 1))
        def report(record):
            print("SHARD", record.shard, flush=True)
        run_study_service(
            algorithm=MidpointAlgorithm(), initial_values=values, rounds=8,
            pattern=pattern, workers=1, shard_size=2,
            journal={journal_path!r}, on_shard=report,
        )
        print("DONE", flush=True)
        """
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", child_code],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    seen = 0
    for line in proc.stdout:
        if line.startswith("SHARD"):
            seen += 1
            if seen == 2:
                os.kill(proc.pid, signal.SIGKILL)
                break
    proc.wait()
    proc.stdout.close()
    assert proc.returncode == -signal.SIGKILL
    assert seen == 2

    direct = Study(**ensemble_kwargs).run()
    records = []
    merged = run_study_service(
        **ensemble_kwargs,
        workers=2,
        shard_size=2,
        journal=journal_path,
        on_shard=records.append,
    )
    sources = {r.shard: r.source for r in records}
    assert sum(1 for s in sources.values() if s == "journal") >= 2, sources
    assert any(s == "worker" for s in sources.values()), sources
    assert np.array_equal(
        merged.execution.recorded_outputs, direct.execution.recorded_outputs
    )


# --------------------------------------------------------------------- #
# Failure semantics: deterministic errors fail fast
# --------------------------------------------------------------------- #


def test_deterministic_failure_fails_fast(ensemble_kwargs):
    # drop=0.9 with enforce_model=True (f=0) is a guaranteed model
    # violation: a FaultModelError on attempt 1, never retried.
    kwargs = dict(ensemble_kwargs, faults=FaultSpec(drop=0.9, seed=7))
    with pytest.raises(FaultModelError) as info:
        run_study_service(**kwargs, workers=2, shard_size=4)
    assert info.value.scenario is not None
    assert info.value.agent is not None

    partial = run_study_service(**kwargs, workers=2, shard_size=4, strict=False)
    assert isinstance(partial, PartialStudyResult)
    assert not partial.complete
    assert all(f.attempts == 1 for f in partial.failures)
    assert all(f.error_type == "FaultModelError" for f in partial.failures)
    assert all(isinstance(f.error, FaultModelError) for f in partial.failures)


def test_adversary_spec_is_rejected(ensemble_kwargs):
    spec = ScenarioSpec(
        initial_values=ensemble_kwargs["initial_values"],
        rounds=8,
        adversary=GreedyDiameterAdversary(deaf_model(n=5)),
    )
    with pytest.raises(ConfigError, match="adversar"):
        run_study_service(MidpointAlgorithm(), scenario=spec, workers=2)


# --------------------------------------------------------------------- #
# Sweep service
# --------------------------------------------------------------------- #


def test_sweep_service_matches_direct_sweep():
    from repro.analysis.experiments import run_certification_sweep

    direct = run_certification_sweep(sizes=(4,), rounds=10, suffix_rounds=12)
    records = []
    service = run_certification_sweep_service(
        sizes=(4,), rounds=10, suffix_rounds=12, workers=2,
        on_shard=records.append,
    )
    assert direct == service
    assert len(records) == len(direct)
    json.dumps(service)  # rows must be JSON-native


# --------------------------------------------------------------------- #
# Retry policy units
# --------------------------------------------------------------------- #


def test_retry_policy_triage():
    policy = RetryPolicy(max_attempts=3)
    transient = WorkerCrashError("worker died", exitcode=-9)
    deterministic = FaultModelError("bad model")
    assert policy.should_retry(transient, 1)
    assert policy.should_retry(transient, 2)
    assert not policy.should_retry(transient, 3)  # budget exhausted
    assert not policy.should_retry(deterministic, 1)
    assert is_transient_failure(ShardTimeoutError("hung", elapsed=1.0))
    assert is_transient_failure(RuntimeError("unknown errors assumed flaky"))
    assert not is_transient_failure(ReproError("deterministic by default"))


def test_retry_policy_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.25
    )
    assert policy.delay_before(1, key="abc") == 0.0
    delays = [policy.delay_before(a, key="abc") for a in range(2, 6)]
    assert delays == [policy.delay_before(a, key="abc") for a in range(2, 6)]
    assert delays == sorted(delays)
    assert all(d <= 0.5 * 1.25 + 1e-12 for d in delays)
    # different keys jitter differently
    assert policy.delay_before(3, key="abc") != policy.delay_before(3, key="xyz")


def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ConfigError):
        RetryPolicy(jitter=-0.1)


# --------------------------------------------------------------------- #
# Checkpoint journal units
# --------------------------------------------------------------------- #


def test_journal_persists_and_dedups(tmp_path):
    path = tmp_path / "journal.jsonl"
    key = content_key({"payload": 1})
    with CheckpointJournal(path) as journal:
        journal.put(key, {"value": 1})
        journal.put(key, {"value": 2})  # last writer wins
        assert journal.get(key) == {"value": 2}
        assert len(journal) == 1
    with CheckpointJournal(path) as journal:
        assert key in journal
        assert journal.get(key) == {"value": 2}


def test_journal_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "journal.jsonl"
    with CheckpointJournal(path) as journal:
        journal.put("a" * 64, {"value": 1})
        journal.put("b" * 64, {"value": 2})
    text = path.read_text()
    path.write_text(text[: len(text) - 9])  # tear the final record
    with CheckpointJournal(path) as journal:
        assert "a" * 64 in journal
        assert "b" * 64 not in journal


def test_journal_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "journal.jsonl"
    with CheckpointJournal(path) as journal:
        journal.put("a" * 64, {"value": 1})
        journal.put("b" * 64, {"value": 2})
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:-5]  # corrupt a non-final record
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ServiceError):
        CheckpointJournal(path)


def test_journal_rejects_foreign_files(tmp_path):
    path = tmp_path / "not-a-journal.jsonl"
    path.write_text('{"some": "other file"}\n')
    with pytest.raises(ServiceError):
        CheckpointJournal(path)
    versioned = tmp_path / "future.jsonl"
    versioned.write_text('{"journal": "repro-service-journal", "version": 99}\n')
    with pytest.raises(ServiceError):
        CheckpointJournal(versioned)


def test_content_key_is_order_insensitive():
    assert content_key({"a": 1, "b": [2, 3]}) == content_key({"b": [2, 3], "a": 1})
    assert content_key({"a": 1}) != content_key({"a": 2})


# --------------------------------------------------------------------- #
# Shard merge validation
# --------------------------------------------------------------------- #


def test_merge_rejects_empty_and_mismatched_shards(ensemble_kwargs):
    with pytest.raises(ExecutionError):
        merge_ensemble_executions([])
    full = Study(**ensemble_kwargs).run().execution
    short = Study(**dict(ensemble_kwargs, rounds=4)).run().execution
    with pytest.raises(ExecutionError):
        merge_ensemble_executions([full, short])


def test_merge_roundtrips_sliced_ensemble(ensemble_kwargs):
    full = Study(**ensemble_kwargs).run().execution
    values = ensemble_kwargs["initial_values"]
    halves = [
        Study(**dict(ensemble_kwargs, initial_values=values[:4])).run().execution,
        Study(**dict(ensemble_kwargs, initial_values=values[4:])).run().execution,
    ]
    merged = merge_ensemble_executions(halves)
    assert np.array_equal(merged.recorded_outputs, full.recorded_outputs)
