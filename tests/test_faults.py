"""The unified fault-injection subsystem (repro.faults) across every engine.

Covers plan construction/validation, the deterministic sampling streams, the
``N_A`` invariant in both directions (compliant plans pass, violating plans
raise a structured :class:`~repro.exceptions.FaultModelError`), the batched
fault-mask path against the per-scenario reference loop, the event-driven
simulator's fault gating (crashes, recovery, joins, drops, timeouts,
starvation diagnosis), the MinRelay port onto the round-based contract, the
config-scoped RNG seed, and certification of faulted ensembles through the
``Study`` facade.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.algorithms import MidpointAlgorithm
from repro.api import CertifySpec, EngineConfig, Study
from repro.asynchrony import (
    AsynchronousSimulator,
    MinRelaySyncAlgorithm,
    RandomDelayScheduler,
    RoundBasedAsyncAlgorithm,
)
from repro.core.adversary import GreedyDiameterAdversary
from repro.exceptions import AsynchronyError, ConfigError, FaultModelError
from repro.execution import run_adversarial_ensemble, run_ensemble, run_execution
from repro.faults import (
    CrashSpec,
    FaultMaskingPattern,
    FaultPlan,
    FaultSpec,
    JoinSpec,
    as_fault_plan,
)
from repro.graphs.families import complete_graph
from repro.models.patterns import SequencePattern
from repro.models.standard import crash_model, deaf_model


def _values(n, d=1, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(n, d))


def _ensemble_values(batch, n, d=1, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(batch, n, d))


class TestPlanValidation:
    def test_crash_rounds_are_one_based(self):
        with pytest.raises(ConfigError):
            CrashSpec(agent=0, round=0)

    def test_recovery_must_follow_the_crash(self):
        with pytest.raises(ConfigError):
            CrashSpec(agent=0, round=3, recovery_round=3)

    def test_probabilities_are_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop=1.0)
        with pytest.raises(ConfigError):
            FaultPlan(duplicate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(jitter=1.5)

    def test_one_spec_per_agent(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(CrashSpec(0, 1), CrashSpec(0, 2)))
        with pytest.raises(ConfigError):
            FaultPlan(joins=(JoinSpec(1, 1), JoinSpec(1, 2)))

    def test_budget_covers_the_declared_faulty_agents(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(CrashSpec(0, 1), CrashSpec(1, 1)), f=1)

    def test_crash_before_join_is_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(CrashSpec(0, 2),), joins=(JoinSpec(0, 5),))

    def test_validate_for_checks_agent_ranges_and_budget(self):
        plan = FaultPlan(crashes=(CrashSpec(5, 1),))
        with pytest.raises(ConfigError):
            plan.validate_for(4)
        with pytest.raises(ConfigError):
            FaultPlan(f=4).validate_for(4)  # need f < n
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(CrashSpec(0, 1), CrashSpec(1, 1))).validate_for(4, f=1)

    def test_as_fault_plan_normalizes(self):
        assert as_fault_plan(None) is None
        assert as_fault_plan(FaultPlan()) is None  # zero plans vanish
        assert as_fault_plan(FaultSpec()) is None
        plan = as_fault_plan(FaultSpec(drop=0.1, seed=3))
        assert isinstance(plan, FaultPlan) and plan.seed == 3
        with pytest.raises(ConfigError):
            as_fault_plan("nope")

    def test_sampling_requires_a_resolved_seed(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop=0.2).drop_mask(1, 0, 4)


class TestPlanSemantics:
    def test_crash_silences_sends_after_the_crash_round(self):
        plan = FaultPlan(crashes=(CrashSpec(1, round=2),))
        assert plan.sends_in_round(1, 2)
        assert not plan.sends_in_round(1, 3)
        assert plan.receives_in_round(1, 2)
        assert not plan.receives_in_round(1, 3)

    def test_recovery_resumes_participation(self):
        plan = FaultPlan(crashes=(CrashSpec(1, round=2, recovery_round=5),))
        assert not plan.participates_in_round(1, 4)
        assert plan.participates_in_round(1, 5)

    def test_late_joiner_listens_before_joining(self):
        plan = FaultPlan(joins=(JoinSpec(2, round=3),))
        assert not plan.sends_in_round(2, 2)
        assert plan.receives_in_round(2, 2)
        assert plan.participates_in_round(2, 3)

    def test_unclean_crash_restricts_the_final_broadcast(self):
        plan = FaultPlan(
            crashes=(CrashSpec(0, round=1, final_recipients=frozenset({2})),), seed=0
        )
        mask = plan.structural_mask(1, 4)
        assert not mask[0, 1] and mask[0, 2] and not mask[0, 3]
        assert mask[0, 0]  # the diagonal is always kept

    def test_batch_masks_slice_equals_scenario_mask(self):
        plan = FaultPlan(drop=0.3, crashes=(CrashSpec(0, 1),), f=2, seed=9)
        stacked = plan.batch_round_masks(2, batch_size=3, n=5)
        for scenario in range(3):
            assert np.array_equal(stacked[scenario], plan.round_mask(2, scenario, 5))

    def test_sampling_is_deterministic_per_seed(self):
        plan = FaultPlan(drop=0.4, f=2, seed=7)
        assert np.array_equal(plan.drop_mask(3, 1, 6), plan.drop_mask(3, 1, 6))
        other = replace(plan, seed=8)
        assert not np.array_equal(plan.drop_mask(3, 1, 6), other.drop_mask(3, 1, 6))

    def test_unresolved_seed_pins_to_the_engine_config(self):
        with EngineConfig(seed=123):
            assert FaultPlan(drop=0.1).resolved().seed == 123
        assert FaultPlan(drop=0.1).resolved().seed == 0  # the default seed
        assert FaultPlan(drop=0.1, seed=5).resolved().seed == 5


class TestCrashModelInvariant:
    def test_compliant_plan_passes(self):
        plan = FaultPlan(crashes=(CrashSpec(0, 1),), seed=0)
        adjacency = complete_graph(5).adjacency
        masked = plan.apply_to_adjacency(adjacency, 2, batch_size=1)
        assert masked[0].sum() == 1  # crashed row: self-loop only
        assert (masked.sum(axis=0)[1:] >= 4).all()

    def test_violation_raises_structured_error(self):
        # Dropping every off-diagonal edge into agent 1 leaves N_A(n=4, f=1).
        plan = FaultPlan(f=1, seed=0, enforce_model=True)
        adjacency = complete_graph(4).adjacency.copy()
        adjacency[:, 1] = False
        adjacency[1, 1] = True
        with pytest.raises(FaultModelError) as excinfo:
            plan.apply_to_adjacency(adjacency, 3, batch_size=1)
        error = excinfo.value
        assert error.round_number == 3
        assert error.agent == 1
        assert error.in_degree == 1
        assert error.required == 3
        assert "scenario 0, round 3" in str(error)

    def test_batch_violation_names_the_scenario(self):
        plan = FaultPlan(f=1, seed=0)
        stacked = np.stack([complete_graph(4).adjacency.copy() for _ in range(3)])
        stacked[2, :, 1] = False
        stacked[2, 1, 1] = True
        with pytest.raises(FaultModelError) as excinfo:
            plan.apply_to_adjacency(stacked, 1, batch_size=3)
        assert excinfo.value.scenario == 2

    def test_enforce_model_false_disables_the_check(self):
        plan = FaultPlan(f=1, seed=0, enforce_model=False)
        adjacency = complete_graph(4).adjacency.copy()
        adjacency[:, 1] = False
        adjacency[1, 1] = True
        out = plan.apply_to_adjacency(adjacency, 1, batch_size=1)
        assert out is adjacency  # no mask activity, returned untouched

    def test_silent_agents_are_exempt(self):
        # The crashed agent's in-degree collapses, but it does not participate.
        plan = FaultPlan(crashes=(CrashSpec(3, 1),), seed=0)
        masked = plan.apply_to_adjacency(complete_graph(5).adjacency, 4, batch_size=1)
        assert masked[:, 3].sum() == 1  # nothing delivered to the crashed agent

    def test_graph_route_matches_adjacency_route(self):
        plan = FaultPlan(drop=0.2, f=3, seed=4, enforce_model=False)
        graph = complete_graph(6)
        masked_graph = plan.apply_to_graph(graph, 2, scenario=1)
        masked_adj = plan.apply_to_adjacency(
            np.stack([graph.adjacency, graph.adjacency]), 2, batch_size=2
        )
        assert np.array_equal(masked_graph.adjacency, masked_adj[1])


class TestBatchedEngineFaults:
    def test_faulted_batch_equals_reference_loop(self):
        n, rounds, batch = 5, 6, 3
        values = _ensemble_values(batch, n)
        graphs = [complete_graph(n)] * rounds
        plan = FaultPlan(
            drop=0.15, crashes=(CrashSpec(0, 2),), f=2, seed=21, enforce_model=False
        )
        batched = run_ensemble(
            MidpointAlgorithm(), values, graphs, use_batch=True, fault_plan=plan
        )
        loop = run_ensemble(
            MidpointAlgorithm(), values, graphs, use_batch=False, fault_plan=plan
        )
        assert np.array_equal(batched.recorded_outputs, loop.recorded_outputs)

    def test_zero_plan_is_bit_for_bit_invisible(self):
        n, rounds, batch = 5, 6, 2
        values = _ensemble_values(batch, n)
        graphs = [complete_graph(n)] * rounds
        bare = run_ensemble(MidpointAlgorithm(), values, graphs)
        zeroed = run_ensemble(
            MidpointAlgorithm(), values, graphs, fault_plan=FaultPlan()
        )
        assert np.array_equal(bare.recorded_outputs, zeroed.recorded_outputs)

    def test_crashed_agent_state_freezes(self):
        n, rounds = 4, 5
        values = _ensemble_values(1, n)
        graphs = [complete_graph(n)] * rounds
        plan = FaultPlan(crashes=(CrashSpec(2, 1),), seed=0)
        result = run_ensemble(MidpointAlgorithm(), values, graphs, fault_plan=plan)
        # After its final round-1 broadcast the agent receives nothing, so its
        # output stays at its post-round-1 value for the rest of the run.
        outputs = result.recorded_outputs  # (R, B, n, d)
        assert np.array_equal(outputs[1, 0, 2], outputs[-1, 0, 2])

    def test_adversarial_route_rejects_fault_plans(self):
        values = _ensemble_values(2, 4)
        adversary = GreedyDiameterAdversary(deaf_model(n=4))
        with pytest.raises(ConfigError, match="committed"):
            run_adversarial_ensemble(
                MidpointAlgorithm(), values, adversary, 3,
                fault_plan=FaultPlan(drop=0.1, seed=0),
            )

    def test_faulted_run_raises_when_leaving_the_model(self):
        n = 4
        values = _ensemble_values(2, n)
        graphs = [complete_graph(n)] * 4
        plan = FaultPlan(drop=0.6, f=1, seed=2)  # aggressive drops, tight budget
        with pytest.raises(FaultModelError) as excinfo:
            run_ensemble(MidpointAlgorithm(), values, graphs, fault_plan=plan)
        assert excinfo.value.scenario is not None
        assert excinfo.value.round_number is not None


class TestStudyFacadeFaults:
    def test_zero_fault_study_is_bit_for_bit(self):
        n, rounds = 5, 4
        values = _values(n)
        graphs = [complete_graph(n)] * rounds
        bare = Study(
            algorithm=MidpointAlgorithm(), initial_values=values, graphs=graphs
        ).run()
        zeroed = Study(
            algorithm=MidpointAlgorithm(), initial_values=values, graphs=graphs,
            faults=FaultSpec(),
        ).run()
        assert not zeroed.provenance.faulted
        assert np.array_equal(bare.final_outputs, zeroed.final_outputs)

    def test_single_scenario_equals_ensemble_scenario_zero(self):
        n, rounds = 5, 4
        values = _values(n)
        graphs = [complete_graph(n)] * rounds
        plan = FaultPlan(drop=0.1, f=2, seed=6)
        solo = Study(
            algorithm=MidpointAlgorithm(), initial_values=values, graphs=graphs,
            faults=plan,
        ).run()
        ensemble = Study(
            algorithm=MidpointAlgorithm(), initial_values=values[None],
            graphs=[[g] for g in graphs], faults=plan,
        ).run()
        assert solo.provenance.faulted and ensemble.provenance.faulted
        assert np.array_equal(solo.final_outputs, ensemble.final_outputs[0])

    def test_faults_and_adversary_cannot_combine(self):
        with pytest.raises(ConfigError, match="adversary"):
            Study(
                algorithm=MidpointAlgorithm(),
                initial_values=_values(4),
                rounds=3,
                adversary=GreedyDiameterAdversary(deaf_model(n=4)),
                faults=FaultPlan(drop=0.1, seed=0),
            )

    def test_config_seed_scopes_the_realized_faults(self):
        n, rounds = 5, 4
        values = _values(n)
        graphs = [complete_graph(n)] * rounds

        def run():
            return Study(
                algorithm=MidpointAlgorithm(), initial_values=values, graphs=graphs,
                faults=FaultPlan(drop=0.15, f=2, enforce_model=False),
            ).run().final_outputs

        with EngineConfig(seed=1):
            first = run()
            again = run()
        with EngineConfig(seed=2):
            other = run()
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other)

    def test_certified_faulted_ensemble_returns_per_scenario_certificates(self):
        n, rounds, batch = 4, 4, 2
        values = _ensemble_values(batch, n)
        graphs = [[complete_graph(n)] * batch] * rounds
        result = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=values,
            graphs=graphs,
            faults=FaultPlan(drop=0.08, f=2, seed=11),
            model=crash_model(n, 1, limit=32),
            certify=CertifySpec(suffix_rounds=12),
        ).run()
        assert result.provenance.faulted
        assert isinstance(result.certificates, list)
        assert len(result.certificates) == batch
        for certificate in result.certificates:
            lower, upper = certificate.rate_interval
            assert np.isfinite(lower) or np.isnan(lower)


class TestFaultMaskingPattern:
    def test_records_raw_choices_and_masks(self):
        plan = FaultPlan(crashes=(CrashSpec(0, 1),), seed=0)
        inner = SequencePattern([complete_graph(4)] * 3)
        pattern = FaultMaskingPattern(inner, plan)
        masked = pattern.graph_at(2)
        assert len(pattern.raw_choices) == 1
        assert pattern.raw_choices[0].adjacency.all()
        assert masked.adjacency[0].sum() == 1
        pattern.reset()
        assert pattern.raw_choices == []


class TestSimulatorFaults:
    def _simulate(self, plan, n=4, f=1, values=None, timeout=None, policy="proceed",
                  max_time=12.0):
        algorithm = RoundBasedAsyncAlgorithm(
            MidpointAlgorithm(), round_timeout=timeout, timeout_policy=policy
        )
        return AsynchronousSimulator(
            algorithm,
            _values(n) if values is None else values,
            f=f,
            fault_plan=plan,
            max_time=max_time,
        ).run()

    def test_zero_plan_matches_no_plan(self):
        bare = self._simulate(None)
        zeroed = self._simulate(FaultPlan())
        assert np.array_equal(bare.final_outputs, zeroed.final_outputs)
        assert len(bare.samples) == len(zeroed.samples)

    def test_plan_crash_freezes_the_agent(self):
        execution = self._simulate(FaultPlan(crashes=(CrashSpec(1, 1),), seed=0))
        assert 1 in execution.crashed_agents
        # The crashed agent never advances past round 1: its output is still
        # its initial value.
        assert np.array_equal(execution.final_outputs[1], _values(4)[1])

    def test_unclean_final_broadcast_reaches_only_named_recipients(self):
        # Event-driven MinRelay: agent 0 holds the minimum and crashes on its
        # first broadcast.  Delivered to agent 1 only, the minimum still
        # propagates transitively; delivered to nobody, it dies with agent 0.
        from repro.asynchrony import MinRelayAlgorithm

        n = 4
        values = np.array([[0.0], [0.4], [0.7], [1.0]])
        witnessed = AsynchronousSimulator(
            MinRelayAlgorithm(), values, f=1,
            fault_plan=FaultPlan(
                crashes=(CrashSpec(0, 1, final_recipients=frozenset({1})),), seed=0
            ),
            max_time=8.0,
        ).run()
        for agent in range(1, n):
            assert np.allclose(witnessed.final_outputs[agent], 0.0)
        silenced = AsynchronousSimulator(
            MinRelayAlgorithm(), values, f=1,
            fault_plan=FaultPlan(
                crashes=(CrashSpec(0, 1, final_recipients=frozenset()),), seed=0
            ),
            max_time=8.0,
        ).run()
        for agent in range(1, n):
            assert np.allclose(silenced.final_outputs[agent], 0.4)

    def test_starvation_is_diagnosed_not_hung(self):
        # Heavy drops leave some agent below its n - f quorum with an empty
        # event queue: the simulator must diagnose the starved agent and
        # round instead of looping forever.
        plan = FaultPlan(drop=0.7, f=1, seed=0, enforce_model=False)
        with pytest.raises(AsynchronyError, match=r"starved in round \d+"):
            self._simulate(plan, n=4, f=1)

    def test_abort_policy_names_agent_and_round(self):
        plan = FaultPlan(drop=0.7, f=1, seed=0, enforce_model=False)
        with pytest.raises(AsynchronyError, match=r"timed out in round \d+"):
            self._simulate(plan, n=4, f=1, timeout=2.0, policy="abort")

    def test_proceed_policy_degrades_gracefully(self):
        plan = FaultPlan(drop=0.7, f=1, seed=0, enforce_model=False)
        execution = self._simulate(plan, n=4, f=1, timeout=2.0, policy="proceed")
        # Agents keep making rounds on whatever arrives before each timeout.
        diameter = execution.correct_diameter_at(execution.final_time)
        assert diameter < 1.0

    def test_retry_policy_survives_heavy_drops(self):
        plan = FaultPlan(drop=0.5, f=1, seed=13, enforce_model=False)
        execution = self._simulate(
            plan, n=4, f=1, timeout=1.5, policy="retry", max_time=40.0
        )
        # Retransmissions draw fresh drop decisions, so every agent
        # eventually clears every round and the system contracts.
        assert execution.correct_diameter_at(execution.final_time) < 0.5

    def test_fault_scenario_selects_the_stream(self):
        plan = FaultPlan(drop=0.15, f=2, seed=3, enforce_model=False)
        runs = []
        for scenario in (0, 1):
            algorithm = RoundBasedAsyncAlgorithm(MidpointAlgorithm())
            execution = AsynchronousSimulator(
                algorithm, _values(4), f=2, fault_plan=plan,
                fault_scenario=scenario, max_time=8.0,
            ).run()
            runs.append(execution.final_outputs)
        assert not np.array_equal(runs[0], runs[1])


class TestMinRelaySync:
    def test_sync_port_relays_the_minimum(self):
        n = 5
        values = np.linspace(0.3, 0.9, n).reshape(n, 1)
        execution = run_execution(
            MinRelaySyncAlgorithm(), values,
            SequencePattern([complete_graph(n)] * 2), 2,
        )
        assert np.allclose(execution.outputs(), values.min())

    def test_runs_under_crash_plans_via_the_round_wrapper(self):
        n = 5
        values = np.linspace(0.3, 0.9, n).reshape(n, 1)
        plan = FaultPlan(crashes=(CrashSpec(0, 1, final_recipients=frozenset()),), seed=0)
        execution = AsynchronousSimulator(
            RoundBasedAsyncAlgorithm(MinRelaySyncAlgorithm()),
            values, f=1, fault_plan=plan, max_time=8.0,
        ).run()
        # Agent 0's minimum never escaped its unclean crash, so the correct
        # agents agree on the smallest surviving value; every output is valid
        # (some agent's initial value).
        finals = execution.final_outputs
        for agent in range(1, n):
            assert np.allclose(finals[agent], values[1])
        for agent in range(n):
            assert any(np.allclose(finals[agent], values[i]) for i in range(n))

    def test_listed_in_the_fuzz_registry(self):
        from tests.test_fuzz_equivalence import ALGORITHMS

        assert any(entry.key == "min-relay-sync" for entry in ALGORITHMS)


class TestSeedThreading:
    def test_random_delay_scheduler_reads_the_config_seed(self):
        scheduler = RandomDelayScheduler()
        with EngineConfig(seed=10):
            first = scheduler.delay(0, 1, 0.0, None)
        with EngineConfig(seed=20):
            second = scheduler.delay(0, 1, 0.0, None)
        assert first != second
        with EngineConfig(seed=10):
            assert scheduler.delay(0, 1, 0.0, None) == first

    def test_explicit_scheduler_seed_wins_over_the_config(self):
        scheduler = RandomDelayScheduler(seed=5)
        baseline = scheduler.delay(0, 1, 0.0, None)
        with EngineConfig(seed=99):
            assert scheduler.delay(0, 1, 0.0, None) == baseline

    def test_invalid_config_seed_is_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(seed=-1)
        with pytest.raises(ConfigError):
            EngineConfig(seed=True)
