"""EngineConfig nesting and thread-locality under concurrent threads.

``EngineConfig`` promises: the innermost active block wins field-by-field,
previous values are restored on exit even when the body raises, and the
active stack plus the masked-reduction settings are *thread-local* — two
threads running under different configurations never observe each other's
overrides.  The module-level reduction setters are deprecated shims whose
``DeprecationWarning`` fires exactly once per process.

The ``threads`` field adds a lifecycle promise on top: the parallel
backend's worker pool is created lazily on the thread-local stack entry,
reused within the block, torn down (joined) on exit, and never shared
between concurrent activations — 100 enter/exit cycles leave no stray
``repro-shard`` threads behind.
"""

import threading
import warnings

import pytest

from repro.algorithms.base import (
    _DEPRECATION_WARNED,
    get_masked_reduction_chunks,
    get_masked_reduction_impl,
    set_masked_reduction_chunks,
    set_masked_reduction_impl,
)
from repro.config import (
    EngineConfig,
    current_engine_config,
    resolve_scenario_chunk,
    resolve_use_batch,
    resolve_use_fast_path,
    resolve_use_packed,
)


class TestNesting:
    def test_innermost_field_wins_and_restores(self):
        with EngineConfig(use_batch=False, scenario_chunk=128):
            assert resolve_use_batch(None) is False
            assert resolve_scenario_chunk(None) == 128
            with EngineConfig(use_batch=True):
                # Inner block overrides one field, inherits the other.
                assert resolve_use_batch(None) is True
                assert resolve_scenario_chunk(None) == 128
            assert resolve_use_batch(None) is False
        assert resolve_use_batch(None) is True  # library default
        assert resolve_scenario_chunk(None) == 4096

    def test_merged_view_reflects_nesting(self):
        with EngineConfig(use_fast_path=False, reduction_impl="dense"):
            with EngineConfig(use_fast_path=True):
                merged = current_engine_config()
                assert merged.use_fast_path is True
                assert merged.reduction_impl == "dense"

    def test_reduction_fields_apply_and_restore_on_raise(self):
        before_impl = get_masked_reduction_impl()
        before_chunks = get_masked_reduction_chunks()
        with pytest.raises(RuntimeError):
            with EngineConfig(reduction_impl="packed", reduction_batch_chunk=7):
                assert get_masked_reduction_impl() == "packed"
                assert get_masked_reduction_chunks()["batch"] == 7
                raise RuntimeError("boom")
        assert get_masked_reduction_impl() == before_impl
        assert get_masked_reduction_chunks() == before_chunks

    def test_explicit_argument_beats_active_config(self):
        with EngineConfig(use_batch=False, use_packed=False):
            assert resolve_use_batch(True) is True
            assert resolve_use_packed(True) is True
            assert resolve_use_fast_path(False) is False


class TestThreadLocality:
    def test_concurrent_threads_see_their_own_configs(self):
        barrier = threading.Barrier(2)
        observed = {}
        errors = []

        def worker(name, use_batch, impl, chunk):
            try:
                with EngineConfig(
                    use_batch=use_batch, reduction_impl=impl, scenario_chunk=chunk
                ):
                    barrier.wait(timeout=10)  # both threads inside their blocks
                    observed[name] = (
                        resolve_use_batch(None),
                        get_masked_reduction_impl(),
                        resolve_scenario_chunk(None),
                    )
                    barrier.wait(timeout=10)  # hold until both observed
                observed[name + "-after"] = (
                    resolve_use_batch(None),
                    get_masked_reduction_impl(),
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=("a", False, "dense", 64)),
            threading.Thread(target=worker, args=("b", True, "packed", 256)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert observed["a"] == (False, "dense", 64)
        assert observed["b"] == (True, "packed", 256)
        assert observed["a-after"] == (True, "auto")
        assert observed["b-after"] == (True, "auto")

    def test_one_shared_config_entered_from_two_threads(self):
        # One EngineConfig *instance* entered concurrently must keep each
        # thread's reduction snapshot separate (the stack entry holds it).
        shared = EngineConfig(reduction_impl="packed")
        barrier = threading.Barrier(2)
        results = {}
        errors = []

        def worker(name):
            try:
                with shared:
                    barrier.wait(timeout=10)
                    results[name] = get_masked_reduction_impl()
                    barrier.wait(timeout=10)
                results[name + "-after"] = get_masked_reduction_impl()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert results["a"] == results["b"] == "packed"
        assert results["a-after"] == results["b-after"] == "auto"

    def test_deprecated_setters_are_thread_local_too(self):
        done = threading.Event()
        observed = {}

        def worker():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                set_masked_reduction_impl("dense")
            observed["inner"] = get_masked_reduction_impl()
            done.set()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=30)
        assert done.is_set()
        assert observed["inner"] == "dense"
        # The mutation never leaks into this thread.
        assert get_masked_reduction_impl() == "auto"


class TestWorkerPoolLifecycle:
    """The parallel backend's pool lives on the thread-local stack entry."""

    @staticmethod
    def _run_sharded():
        import numpy as np

        from repro.algorithms import MidpointAlgorithm
        from repro.execution import run_ensemble
        from repro.graphs.families import complete_graph, cycle_graph

        n = 4
        values = np.random.default_rng(0).uniform(0.0, 1.0, size=(6, n, 1))
        return run_ensemble(
            MidpointAlgorithm(), values, [complete_graph(n), cycle_graph(n)]
        )

    def test_pool_is_created_lazily_and_reused_within_a_block(self):
        from repro.config import _ACTIVE_CONFIGS

        with EngineConfig(threads=3):
            entry = _ACTIVE_CONFIGS.stack[-1]
            assert entry.pool is None  # nothing ran yet
            self._run_sharded()
            first_pool = entry.pool
            assert first_pool is not None
            assert entry.pool_size == 3
            self._run_sharded()
            assert entry.pool is first_pool  # reused, not rebuilt

    def test_pool_is_torn_down_on_exit(self):
        from repro.config import _ACTIVE_CONFIGS

        with EngineConfig(threads=2):
            self._run_sharded()
            entry = _ACTIVE_CONFIGS.stack[-1]
            assert entry.pool is not None
        assert entry.pool is None  # shut down and dropped by __exit__
        assert not [
            t for t in threading.enumerate() if t.name.startswith("repro-shard")
        ]

    def test_concurrent_thread_scopes_do_not_leak_pool_sizes(self):
        from repro.config import _ACTIVE_CONFIGS, resolve_threads

        ambient = resolve_threads(None)  # env default (e.g. REPRO_THREADS in CI)
        barrier = threading.Barrier(2)
        observed = {}
        errors = []

        def worker(name, threads):
            try:
                with EngineConfig(threads=threads):
                    barrier.wait(timeout=10)  # both threads inside their blocks
                    self._run_sharded()
                    entry = _ACTIVE_CONFIGS.stack[-1]
                    observed[name] = (
                        resolve_threads(None),
                        entry.pool_size,
                        entry.pool,
                    )
                    barrier.wait(timeout=10)  # hold until both observed
                observed[name + "-after"] = resolve_threads(None)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=("a", 2)),
            threading.Thread(target=worker, args=("b", 5)),
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=30)
        assert not errors
        assert observed["a"][:2] == (2, 2)
        assert observed["b"][:2] == (5, 5)
        # Two activations, two pools — even for scopes alive at the same time.
        assert observed["a"][2] is not observed["b"][2]
        assert observed["a-after"] == observed["b-after"] == ambient

    def test_one_shared_config_entered_from_two_threads_gets_two_pools(self):
        from repro.config import _ACTIVE_CONFIGS

        shared = EngineConfig(threads=2)
        barrier = threading.Barrier(2)
        pools = {}
        errors = []

        def worker(name):
            try:
                with shared:
                    barrier.wait(timeout=10)
                    self._run_sharded()
                    pools[name] = _ACTIVE_CONFIGS.stack[-1].pool
                    barrier.wait(timeout=10)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        workers = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=30)
        assert not errors
        assert pools["a"] is not None and pools["b"] is not None
        assert pools["a"] is not pools["b"]

    def test_hundred_cycles_leak_no_threads(self):
        baseline = threading.active_count()
        for _ in range(100):
            with EngineConfig(threads=4):
                self._run_sharded()
        assert not [
            t for t in threading.enumerate() if t.name.startswith("repro-shard")
        ]
        # shutdown(wait=True) joins the workers, so the count returns to the
        # baseline (tolerating unrelated daemon threads started elsewhere).
        assert threading.active_count() <= baseline

    def test_nested_scopes_innermost_thread_count_wins(self):
        from repro.config import resolve_threads

        ambient = resolve_threads(None)  # env default (e.g. REPRO_THREADS in CI)
        with EngineConfig(threads=2):
            assert resolve_threads(None) == 2
            with EngineConfig(threads=5):
                assert resolve_threads(None) == 5
                self._run_sharded()
            assert resolve_threads(None) == 2
        assert resolve_threads(None) == ambient


class TestOneTimeDeprecationWarnings:
    @pytest.fixture(autouse=True)
    def _isolate_warned_registry(self):
        saved = set(_DEPRECATION_WARNED)
        _DEPRECATION_WARNED.clear()
        try:
            yield
        finally:
            _DEPRECATION_WARNED.clear()
            _DEPRECATION_WARNED.update(saved)
            # Restore library defaults the setters may have touched.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                set_masked_reduction_impl("auto")
                set_masked_reduction_chunks()

    def test_impl_setter_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            set_masked_reduction_impl("dense")
            set_masked_reduction_impl("auto")
            set_masked_reduction_impl("packed")
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "set_masked_reduction_impl" in str(deprecations[0].message)
        assert "EngineConfig" in str(deprecations[0].message)

    def test_chunks_setter_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            set_masked_reduction_chunks(batch=4)
            set_masked_reduction_chunks(batch=8, receivers=16)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "set_masked_reduction_chunks" in str(deprecations[0].message)

    def test_setters_warn_independently(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            set_masked_reduction_impl("dense")
            set_masked_reduction_chunks(batch=4)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2

    def test_setter_still_applies_after_warning_suppressed(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            set_masked_reduction_impl("dense")
        assert get_masked_reduction_impl() == "dense"
