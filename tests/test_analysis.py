"""Tests for the analysis package: experiments and the Table-1 summary."""

import pytest

from repro.analysis import (
    Table1Row,
    build_table1,
    experiment_decision_times,
    experiment_nonsplit,
    experiment_solvability,
    experiment_two_agent,
    format_table,
    format_table1,
)


def test_experiment_two_agent_measures_one_third():
    result = experiment_two_agent()
    assert result["measured"] == pytest.approx(result["paper"], abs=1e-6)


def test_experiment_nonsplit_measures_one_half():
    result = experiment_nonsplit(n=4, rounds=20)
    assert result["measured"] == pytest.approx(0.5, abs=1e-9)


def test_experiment_decision_times_matches_closed_form():
    result = experiment_decision_times(delta=1.0, epsilon=1e-2)
    assert result["measured"] == result["paper"]


def test_experiment_solvability():
    assert experiment_solvability()["measured"] is True


def test_build_table1_rows_are_consistent():
    rows = build_table1(n=6, f=2)
    assert all(isinstance(row, Table1Row) for row in rows)
    for row in rows:
        if row.upper_bound is not None:
            assert row.lower_bound <= row.upper_bound + 1e-12


def test_format_table1_renders():
    text = format_table1(n=6, f=2)
    assert "Theorem 3" in text and "midpoint" in text


def test_format_table_handles_mixed_cells():
    text = format_table(["a", "b"], [[1, None], ["x", 2.5]], title="t")
    assert "nan" not in text and "-" in text
