"""Minimizer contract: deterministic convergence and replayable artifacts.

A deliberately perturbed toggle (the :class:`PerturbedAlgorithm` wrapper on
one side of a pair) diverges on essentially any scenario.  Minimization is a
pure function of the input spec with a fixed reduction order, so *different*
diverging starts of the same (target, algorithm, perturbation) must converge
to the *same* minimal scenario — and the artifact written for it must replay
to bit-for-bit identical payloads every time.
"""

import numpy as np
import pytest

from repro.campaign.artifacts import (
    load_artifact,
    make_artifact_payload,
    replay_artifact,
    write_artifact,
)
from repro.campaign.minimize import minimize
from repro.campaign.targets import CaseSpec, execute_case
from repro.exceptions import CampaignError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import complete_graph
from repro.graphs.generators import random_graph

PERTURB = {"side": "left", "round": 1, "agent": 0, "epsilon": 1e-3}


def _start(seed, n, batch, rounds, d, record_every):
    """One diverging start: perturbed mean on batch_vs_loop, random scenario."""
    rng = np.random.default_rng(seed)
    graphs = tuple(
        random_graph(n, rng, 0.6) if rng.random() < 0.5
        else tuple(random_graph(n, rng, 0.6) for _ in range(batch))
        for _ in range(rounds)
    )
    return CaseSpec(
        target="batch_vs_loop",
        algorithm="mean",
        params={},
        values=rng.uniform(-2.0, 2.0, size=(batch, n, d)),
        graphs=graphs,
        record_every=record_every,
        perturb=PERTURB,
    )


STARTS = [
    _start(0, n=3, batch=1, rounds=1, d=1, record_every=1),
    _start(1, n=4, batch=2, rounds=2, d=2, record_every=2),
    _start(2, n=5, batch=3, rounds=3, d=1, record_every=3),
    _start(3, n=6, batch=4, rounds=2, d=2, record_every=1),
]


def test_starts_actually_diverge():
    for spec in STARTS:
        assert execute_case(spec).status == "divergence"


def test_minimize_is_deterministic():
    spec = STARTS[1]
    assert minimize(spec).key() == minimize(spec).key()


def test_multiple_starts_converge_to_one_minimal_scenario():
    minima = [minimize(spec) for spec in STARTS]
    keys = {m.key() for m in minima}
    assert len(keys) == 1, f"starts minimized to {len(keys)} distinct scenarios"
    minimal = minima[0]
    # The canonical minimal form of an unconditional perturbation: one
    # scenario, one agent (the perturbed one), one coordinate, one round,
    # a self-loop-only graph, zeroed values, cadence 1, no plan.
    assert minimal.batch == 1
    assert minimal.n == 1
    assert minimal.d == 1
    assert minimal.rounds == 1
    assert minimal.record_every == 1
    assert minimal.plan is None
    assert minimal.graphs == (CommunicationGraph(1),)
    assert np.array_equal(minimal.values, np.zeros((1, 1, 1)))
    assert minimal.perturb == PERTURB


def test_minimal_spec_still_diverges():
    minimal = minimize(STARTS[0])
    assert execute_case(minimal).status == "divergence"


def test_minimize_rejects_non_diverging_input():
    clean = CaseSpec(
        target="batch_vs_loop", algorithm="mean", params={},
        values=np.zeros((1, 3, 1)), graphs=(complete_graph(3),),
    )
    with pytest.raises(CampaignError, match="non-diverging"):
        minimize(clean)


def test_artifacts_from_different_starts_replay_to_same_payloads(tmp_path):
    paths = []
    for index, spec in enumerate(STARTS[:2]):
        minimal = minimize(spec)
        result = execute_case(minimal)
        payload = make_artifact_payload(minimal, result, minimized_from=spec.key())
        paths.append(write_artifact(tmp_path / f"run{index}", payload))
    first, second = (load_artifact(p) for p in paths)
    # Same minimal spec -> same file name and identical recorded payloads.
    assert paths[0].name == paths[1].name
    assert first["spec"] == second["spec"]
    assert first["divergence"]["expected"] == second["divergence"]["expected"]
    assert first["divergence"]["actual"] == second["divergence"]["actual"]
    for path in paths:
        replay = replay_artifact(path)
        assert replay.reproduced, replay


def test_perturbed_agent_survives_agent_reduction():
    # Perturb agent 2 of 4: the minimizer must keep that agent while
    # removing the others, renumbering the perturbation as it goes.
    rng = np.random.default_rng(9)
    spec = CaseSpec(
        target="batch_vs_loop", algorithm="mean", params={},
        values=rng.uniform(-1.0, 1.0, size=(1, 4, 1)),
        graphs=(complete_graph(4), complete_graph(4)),
        perturb={"side": "left", "round": 1, "agent": 2, "epsilon": 1e-3},
    )
    assert execute_case(spec).status == "divergence"
    minimal = minimize(spec)
    assert minimal.n == 1
    assert minimal.perturb["agent"] == 0
    assert execute_case(minimal).status == "divergence"
