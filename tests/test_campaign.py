"""The counterexample campaign service: registry, specs, corpus, campaign loop.

Covers the contracts the campaign subsystem promises:

* the fuzz-registry audit matches the serialization codec registry both ways
  and fails loudly on unfuzzed or phantom entries;
* case specs serialize canonically and rebuild bit-for-bit;
* generation, mutation and campaign planning are seed-deterministic;
* clean toggles agree, a deliberately perturbed toggle diverges, and the
  campaign finds the planted divergence, minimizes it and persists a
  replayable artifact within a small budget;
* resuming a finished campaign replays every round from the journal without
  re-executing a case.

The crash-resume (SIGKILL) path lives in test_campaign_crash.py and the
minimizer convergence contract in test_campaign_minimize.py.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.campaign import (
    Corpus,
    audit_registry,
    build_case,
    case_features,
    execute_case,
    mutate_spec,
    replay_artifact,
    run_campaign,
)
from repro.campaign.__main__ import main as campaign_main
from repro.campaign.registry import ORDERED_ENTRIES, REGISTRY, get_entry
from repro.campaign.repro import artifact_repro_command, repro_snippet
from repro.campaign.targets import TARGETS, CaseSpec, enumerate_targets, run_case
from repro.exceptions import CampaignError
from repro.service.checkpoint import CheckpointJournal
from repro.service.serialization import registered_algorithm_names

PERTURB = {"side": "left", "round": 1, "agent": 0, "epsilon": 1e-3}


# --------------------------------------------------------------------- #
# Registry audit
# --------------------------------------------------------------------- #


def test_every_registered_algorithm_is_fuzzed():
    audit = audit_registry()
    assert audit.ok, audit.summary()
    assert set(audit.fuzzed) | set(audit.reference_only) == set(
        registered_algorithm_names()
    )
    # The reference-only entries are called out explicitly in the summary.
    assert "mass-splitting" in audit.reference_only
    assert "flooding-exact" in audit.reference_only
    assert "min-relay-sync" in audit.reference_only
    assert "[reference-only: no batch hooks]" in audit.summary()


def test_audit_fails_loudly_on_unfuzzed_algorithm():
    names = registered_algorithm_names() + ("brand-new-algorithm",)
    audit = audit_registry(codec_names=names)
    assert not audit.ok
    assert audit.unfuzzed == ("brand-new-algorithm",)
    with pytest.raises(CampaignError, match="brand-new-algorithm"):
        audit_registry(strict=True, codec_names=names)


def test_audit_fails_on_fuzz_entry_without_codec():
    names = tuple(n for n in registered_algorithm_names() if n != "midpoint")
    audit = audit_registry(codec_names=names)
    assert not audit.ok
    assert audit.unknown == ("midpoint",)


def test_get_entry_rejects_unknown_keys():
    with pytest.raises(CampaignError, match="unknown fuzz-registry key"):
        get_entry("no-such-algorithm")


def test_capability_flags_gate_targets():
    mass = get_entry("mass-splitting")
    keys = enumerate_targets(mass)
    assert "batch_vs_loop" not in keys  # reference-only
    assert "faulted_batch_vs_loop" not in keys  # no fault support
    assert "simulator_vs_round" not in keys  # graph-pinned
    assert "facade_vs_direct" in keys
    midpoint = get_entry("midpoint")
    assert set(enumerate_targets(midpoint)) == set(TARGETS)


# --------------------------------------------------------------------- #
# Case specs: generation, serialization, execution
# --------------------------------------------------------------------- #


def test_build_case_is_deterministic():
    for target in TARGETS:
        assert build_case(target, 5).key() == build_case(target, 5).key()


@pytest.mark.parametrize("target", sorted(TARGETS))
def test_spec_roundtrips_bit_for_bit(target):
    spec = build_case(target, 11)
    rebuilt = CaseSpec.from_dict(spec.to_dict())
    assert rebuilt.key() == spec.key()
    assert np.array_equal(rebuilt.values, spec.values)
    assert rebuilt.graphs == spec.graphs
    assert rebuilt.plan == spec.plan


def test_spec_rejects_malformed_payloads():
    spec = build_case("batch_vs_loop", 0)
    payload = spec.to_dict()
    with pytest.raises(CampaignError):
        CaseSpec.from_dict({**payload, "__type__": "something-else"})
    with pytest.raises(CampaignError):
        CaseSpec.from_dict({**payload, "version": 99})


def test_spec_freezing_does_not_mutate_caller_arrays():
    from repro.graphs.families import complete_graph

    values = np.zeros((1, 3, 1))
    spec = CaseSpec(
        target="batch_vs_loop", algorithm="midpoint", params={},
        values=values, graphs=(complete_graph(3),),
    )
    # The spec's copy is frozen, but the caller's array must stay writeable.
    assert not spec.values.flags.writeable
    assert values.flags.writeable


@pytest.mark.parametrize("target", sorted(TARGETS))
def test_clean_toggles_agree(target):
    for seed in range(4):
        result = run_case(target, seed)  # raises CampaignError on divergence
        assert result.status in ("agree", "skip")


def test_reference_only_cases_skip_batch_targets():
    spec = build_case("batch_vs_loop", 0)
    entry = get_entry("mass-splitting")
    graph = spec.graphs[0] if hasattr(spec.graphs[0], "n") else spec.graphs[0][0]
    forced = CaseSpec(
        target="batch_vs_loop", algorithm="mass-splitting", params={},
        values=np.zeros((1, graph.n, 1)), graphs=(graph,),
    )
    result = execute_case(forced)
    assert result.status == "skip"
    assert "reference-only" in result.reason
    assert entry.reference_only


def test_perturbed_toggle_diverges_and_repro_raises():
    found = None
    for seed in range(10):
        spec = replace(build_case("batch_vs_loop", seed), perturb=PERTURB)
        if execute_case(spec).status == "divergence":
            found = spec
            break
    assert found is not None, "no perturbable case drawn in 10 seeds"
    result = execute_case(found)
    assert result.divergence is not None
    assert result.divergence.label != ""


def test_run_case_raises_on_divergence_like_an_assertion():
    snippet = repro_snippet("batch_vs_loop", 42)
    assert "run_case('batch_vs_loop', 42)" in snippet
    assert "tests.test_fuzz_equivalence" in snippet
    assert artifact_repro_command("x.json").endswith("replay x.json")


# --------------------------------------------------------------------- #
# Corpus and mutation
# --------------------------------------------------------------------- #


def test_corpus_admits_only_novel_features(tmp_path):
    corpus = Corpus(tmp_path / "corpus")
    spec = build_case("batch_vs_loop", 1)
    result = execute_case(spec)
    features = case_features(spec, result)
    assert corpus.is_novel(features)
    key = corpus.add(spec, features, origin={"test": True})
    assert key == spec.key()
    assert not corpus.is_novel(features)
    # Reload from disk: same entries, same novelty state.
    reloaded = Corpus(tmp_path / "corpus")
    assert reloaded.keys() == corpus.keys()
    assert not reloaded.is_novel(features)
    assert reloaded.spec(key).key() == spec.key()


def test_corpus_rejects_foreign_files(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "junk.json").write_text('{"not": "a corpus entry"}')
    with pytest.raises(CampaignError, match="not a corpus entry"):
        Corpus(root)


def test_mutation_is_deterministic_and_valid():
    spec = build_case("batch_vs_loop", 3)
    first = mutate_spec(spec, 7)
    second = mutate_spec(spec, 7)
    assert first.key() == second.key()
    assert first.key() != spec.key()
    other = mutate_spec(spec, 8)
    # Different seeds may coincide but usually explore different mutants.
    assert isinstance(other, CaseSpec)
    # Mutants stay executable (valid shapes, graphs, plans).
    assert execute_case(first).status in ("agree", "skip", "divergence")


def test_mutation_respects_fixed_n():
    for seed in range(40):
        spec = build_case("batch_vs_loop", seed)
        if spec.algorithm == "two-agent-thirds":
            mutant = mutate_spec(spec, 1)
            assert mutant.n == 2
            return
    pytest.skip("no two-agent case drawn in 40 seeds")


# --------------------------------------------------------------------- #
# The campaign loop
# --------------------------------------------------------------------- #


def test_campaign_smoke_clean(tmp_path):
    report = run_campaign(
        3, 8, tmp_path / "corpus", tmp_path / "journal.jsonl", batch_size=4
    )
    assert report.executed == 8
    assert report.rounds == 2
    assert report.clean
    assert report.corpus_size > 0
    with CheckpointJournal(tmp_path / "journal.jsonl") as journal:
        assert len(journal) == 2


def test_campaign_resume_replays_rounds_without_reexecution(tmp_path):
    first = run_campaign(
        3, 8, tmp_path / "corpus", tmp_path / "journal.jsonl", batch_size=4
    )
    again = run_campaign(
        3, 8, tmp_path / "corpus", tmp_path / "journal.jsonl", batch_size=4
    )
    assert again.replayed_rounds == again.rounds == 2
    assert again.executed == first.executed  # tallies come from the journal
    assert again.corpus_size == first.corpus_size
    assert again.new_corpus_entries == 0


def test_campaign_finds_minimizes_and_replays_planted_divergence(tmp_path):
    report = run_campaign(
        1, 6, tmp_path / "corpus", tmp_path / "journal.jsonl",
        batch_size=6, perturb=PERTURB,
    )
    assert report.divergences, "the planted divergence was not found in budget"
    assert report.artifact_paths
    for path in report.artifact_paths:
        result = replay_artifact(path)
        assert result.reproduced, result
    for divergence in report.divergences:
        assert divergence["minimal_key"]
        assert divergence["target"] in TARGETS


def test_campaign_validates_inputs(tmp_path):
    with pytest.raises(CampaignError, match="budget"):
        run_campaign(0, 0, tmp_path / "c", tmp_path / "j.jsonl")
    with pytest.raises(CampaignError, match="unknown target"):
        run_campaign(0, 1, tmp_path / "c", tmp_path / "j.jsonl", targets=["nope"])


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def test_cli_audit_ok(capsys):
    assert campaign_main(["audit", "--strict"]) == 0
    assert "audit OK" in capsys.readouterr().out


def test_cli_run_and_replay(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    journal = str(tmp_path / "journal.jsonl")
    code = campaign_main(
        ["run", "--seed", "2", "--budget", "4", "--batch", "4",
         "--corpus", corpus, "--journal", journal, "--fail-on-divergence"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert '"executed": 4' in out

    # Broken mode plants a divergence; --fail-on-divergence exits non-zero.
    bcorpus = str(tmp_path / "bcorpus")
    bjournal = str(tmp_path / "bjournal.jsonl")
    code = campaign_main(
        ["run", "--seed", "1", "--budget", "6", "--batch", "6",
         "--corpus", bcorpus, "--journal", bjournal,
         "--broken", "--fail-on-divergence"]
    )
    assert code == 1
    import json as _json

    report = _json.loads(capsys.readouterr().out)
    assert report["divergences"]
    artifact = report["artifacts"][0]
    assert campaign_main(["replay", artifact]) == 0
    assert "reproduced" in capsys.readouterr().out


def test_parent_weights_favor_recent_novelty_and_decay(tmp_path):
    from repro.campaign.campaign import (
        _BASE_WEIGHT,
        _NOVELTY_DECAY,
        _draw_parent,
        _parent_weights,
    )

    corpus = Corpus(tmp_path / "corpus")
    specs = {}
    for seed in (1, 2, 3, 4):
        spec = build_case("batch_vs_loop", seed)
        result = execute_case(spec)
        specs[seed] = spec
        corpus.add(
            spec,
            case_features(spec, result) + (f"synthetic:{seed}",),
            origin={"campaign_seed": 0, "round": 0, "status": "agree", "parent": None},
        )
    hot, stale = specs[1].key(), specs[2].key()
    # Two admissions bred from `hot` at round 5, one from `stale` at round 1.
    for seed, (parent, admitted_round) in {3: (hot, 5), 4: (hot, 5)}.items():
        child = mutate_spec(specs[seed], seed)
        child_result = execute_case(child)
        corpus.add(
            child,
            case_features(child, child_result) + (f"synthetic:child:{seed}",),
            origin={
                "campaign_seed": 0,
                "round": admitted_round,
                "status": "agree",
                "parent": parent,
            },
        )
    stale_child = mutate_spec(specs[2], 99)
    corpus.add(
        stale_child,
        case_features(stale_child, execute_case(stale_child)) + ("synthetic:stale",),
        origin={"campaign_seed": 0, "round": 1, "status": "agree", "parent": stale},
    )

    at_round_6 = _parent_weights(corpus, 6)
    # The hot parent (2 admissions, age 1) outweighs the stale one (1
    # admission, age 5).
    assert at_round_6[hot] == pytest.approx(_BASE_WEIGHT + 2 * _NOVELTY_DECAY**1)
    assert at_round_6[stale] == pytest.approx(_BASE_WEIGHT + _NOVELTY_DECAY**5)
    assert at_round_6[hot] > at_round_6[stale]
    # A parent that bred nothing sits at the baseline.
    never_bred = specs[3].key()
    assert at_round_6[never_bred] == pytest.approx(_BASE_WEIGHT)

    # The stale parent's weight decays monotonically toward the baseline as
    # rounds pass without it breeding anything new.
    stale_trajectory = [
        _parent_weights(corpus, round_index)[stale] for round_index in (2, 4, 8, 16)
    ]
    assert all(a > b for a, b in zip(stale_trajectory, stale_trajectory[1:]))
    assert stale_trajectory[-1] == pytest.approx(_BASE_WEIGHT, abs=1e-3)

    # Weights are pure in (corpus content, round): a reload reconstructs
    # them exactly, and the weighted draw is rng-deterministic.
    reloaded = _parent_weights(Corpus(tmp_path / "corpus"), 6)
    assert reloaded == at_round_6
    draws = [
        _draw_parent(np.random.default_rng(7), at_round_6) for _ in range(3)
    ]
    assert len(set(draws)) == 1
    counts = {}
    rng = np.random.default_rng(11)
    for _ in range(500):
        key = _draw_parent(rng, at_round_6)
        counts[key] = counts.get(key, 0) + 1
    assert counts[hot] > counts[stale]


def test_campaign_admissions_record_their_parent(tmp_path):
    report = run_campaign(
        seed=5,
        budget=24,
        corpus_dir=tmp_path / "corpus",
        journal_path=tmp_path / "journal.jsonl",
        batch_size=8,
        targets=("batch_vs_loop",),
    )
    assert report.executed == 24
    corpus = Corpus(tmp_path / "corpus")
    origins = [corpus.get(key)["origin"] for key in corpus.keys()]
    assert all("parent" in origin for origin in origins)
    # Later rounds breed from the corpus, so at least one admission should
    # name a parent that is itself a corpus key (when any mutant admitted).
    parents = [origin["parent"] for origin in origins if origin["parent"]]
    assert all(parent in corpus for parent in parents)
