"""Batch-vs-reference equivalence of the valency/contraction certification engine.

The batched :class:`~repro.core.valency.ValencyEstimator` must produce
bit-for-bit identical estimates to the per-sequence reference loop
(``use_batch=False``): identical ``limits`` arrays, identical diameter
bounds, identical traces, identical intersection verdicts — across
algorithms, models, exploration depths, value dimensions and streaming
chunk sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    MeanAlgorithm,
    MidpointAlgorithm,
    SelfWeightedAveraging,
    TwoAgentThirdsAlgorithm,
)
from repro.analysis import run_certification_sweep
from repro.core.adversary import GreedyDiameterAdversary, PsiBlockAdversary
from repro.core.contraction import valency_contraction_trace
from repro.core.valency import ValencyEstimator
from repro.execution.engine import initial_configuration, run_execution
from repro.models.standard import deaf_model, psi_model, two_agent_model


def _estimators(algorithm, model, **kwargs):
    batched = ValencyEstimator(algorithm, model, use_batch=True, **kwargs)
    reference = ValencyEstimator(algorithm, model, use_batch=False, **kwargs)
    return batched, reference


CASES = [
    (MidpointAlgorithm(), deaf_model(n=5), np.linspace(0.0, 1.0, 5), 0),
    (MidpointAlgorithm(), deaf_model(n=5), np.linspace(0.0, 1.0, 5), 2),
    (MeanAlgorithm(), psi_model(4), np.linspace(0.0, 1.0, 4), 1),
    (TwoAgentThirdsAlgorithm(), two_agent_model(), [0.0, 1.0], 2),
    (SelfWeightedAveraging(0.3), deaf_model(n=4), np.linspace(-1.0, 1.0, 4), 1),
]


@pytest.mark.parametrize("algorithm,model,values,depth", CASES)
def test_limit_estimates_bit_for_bit(algorithm, model, values, depth):
    configuration = initial_configuration(algorithm, values)
    batched, reference = _estimators(
        algorithm, model, suffix_rounds=40, exploration_depth=depth
    )
    limits_batched = batched.limit_estimates(configuration)
    limits_reference = reference.limit_estimates(configuration)
    assert limits_batched.shape == limits_reference.shape
    assert np.array_equal(limits_batched, limits_reference)


@pytest.mark.parametrize("algorithm,model,values,depth", CASES)
def test_estimate_bounds_bit_for_bit(algorithm, model, values, depth):
    configuration = initial_configuration(algorithm, values)
    batched, reference = _estimators(
        algorithm, model, suffix_rounds=30, exploration_depth=depth
    )
    estimate_batched = batched.estimate(configuration)
    estimate_reference = reference.estimate(configuration)
    assert estimate_batched.lower_diameter == estimate_reference.lower_diameter
    assert estimate_batched.upper_diameter == estimate_reference.upper_diameter
    assert batched.valency_diameter(configuration) == reference.valency_diameter(
        configuration
    )


@pytest.mark.parametrize("chunk", [1, 3, 7, 4096])
def test_streamed_prefix_chunks_do_not_change_results(chunk):
    algorithm, model = MidpointAlgorithm(), deaf_model(n=4)
    configuration = initial_configuration(algorithm, np.linspace(0.0, 1.0, 4))
    batched = ValencyEstimator(
        algorithm, model, suffix_rounds=25, exploration_depth=2, scenario_chunk=chunk
    )
    reference = ValencyEstimator(
        algorithm, model, suffix_rounds=25, exploration_depth=2, use_batch=False
    )
    assert np.array_equal(
        batched.limit_estimates(configuration), reference.limit_estimates(configuration)
    )


def test_multidimensional_values_bit_for_bit():
    algorithm, model = MidpointAlgorithm(), deaf_model(n=4)
    rng = np.random.default_rng(0)
    configuration = initial_configuration(algorithm, rng.uniform(-1.0, 1.0, size=(4, 3)))
    batched, reference = _estimators(
        algorithm, model, suffix_rounds=35, exploration_depth=1
    )
    assert np.array_equal(
        batched.limit_estimates(configuration), reference.limit_estimates(configuration)
    )


def test_active_set_dropping_is_bit_for_bit():
    # Long suffixes force exact float fixpoints, so the active set actually
    # drops scenarios mid-run; results must stay identical to the full run.
    algorithm, model = MidpointAlgorithm(), deaf_model(n=5)
    configuration = initial_configuration(algorithm, np.linspace(0.0, 1.0, 5))
    batched, reference = _estimators(
        algorithm, model, suffix_rounds=200, exploration_depth=1
    )
    assert np.array_equal(
        batched.limit_estimates(configuration), reference.limit_estimates(configuration)
    )


def test_trace_stacked_configurations_bit_for_bit():
    algorithm, model = MidpointAlgorithm(), deaf_model(n=5)
    execution = run_execution(
        algorithm, np.linspace(0.0, 1.0, 5), GreedyDiameterAdversary(model), 6
    )
    batched, reference = _estimators(
        algorithm, model, suffix_rounds=40, exploration_depth=1
    )
    trace_batched = batched.trace(execution.configurations)
    trace_reference = reference.trace(execution.configurations)
    assert len(trace_batched) == len(trace_reference)
    for estimate_b, estimate_r in zip(trace_batched, trace_reference):
        assert np.array_equal(estimate_b.limits, estimate_r.limits)
        assert estimate_b.lower_diameter == estimate_r.lower_diameter
        assert estimate_b.upper_diameter == estimate_r.upper_diameter


def test_trace_empty_and_contraction_trace_equivalence():
    algorithm, model = MidpointAlgorithm(), deaf_model(n=4)
    batched, _ = _estimators(algorithm, model, suffix_rounds=10)
    assert batched.trace([]) == []
    trace_batched = valency_contraction_trace(
        algorithm,
        model,
        GreedyDiameterAdversary(model),
        np.linspace(0.0, 1.0, 4),
        rounds=5,
        suffix_rounds=30,
        exploration_depth=1,
        use_batch=True,
    )
    trace_reference = valency_contraction_trace(
        algorithm,
        model,
        GreedyDiameterAdversary(model),
        np.linspace(0.0, 1.0, 4),
        rounds=5,
        suffix_rounds=30,
        exploration_depth=1,
        use_batch=False,
    )
    assert trace_batched == trace_reference


def test_valencies_intersect_matches_reference():
    algorithm, model = MidpointAlgorithm(), deaf_model(n=5)
    config_a = initial_configuration(algorithm, np.linspace(0.0, 1.0, 5))
    config_b = initial_configuration(algorithm, np.linspace(0.2, 1.2, 5))
    for tolerance in (1e-9, 1e-3, 0.5, 2.0):
        batched, reference = _estimators(algorithm, model, suffix_rounds=50)
        assert batched.valencies_intersect(
            config_a, config_b, tolerance
        ) == reference.valencies_intersect(config_a, config_b, tolerance)


def test_stateful_algorithm_takes_batch_state_path():
    # The amortized midpoint carries state beyond its outputs; the batched
    # estimator covers it through the batch_state restore hooks (it must NOT
    # take the outputs-based convex-combination path) and agrees exactly
    # with the per-future reference loop.
    algorithm = AmortizedMidpointAlgorithm()
    model = psi_model(4)
    configuration = initial_configuration(algorithm, np.linspace(0.0, 1.0, 4))
    batched, reference = _estimators(algorithm, model, suffix_rounds=12)
    assert not batched._batchable()
    assert batched._batchable_stateful()
    assert np.array_equal(
        batched.limit_estimates(configuration), reference.limit_estimates(configuration)
    )


class TestStatefulBatchStatePath:
    """ValencyEstimator(use_batch=True) covers stateful algorithms via batch_state."""

    @pytest.mark.parametrize("depth", [0, 1])
    def test_mid_phase_configurations_bit_for_bit(self, depth):
        # Mid-execution configurations carry mid-phase extremes; the restored
        # batch state must resume them exactly.
        algorithm = AmortizedMidpointAlgorithm()
        model = psi_model(5)
        execution = run_execution(
            algorithm, np.linspace(0.0, 1.0, 5), PsiBlockAdversary(5), 7
        )
        batched, reference = _estimators(
            algorithm, model, suffix_rounds=25, exploration_depth=depth
        )
        for configuration in execution.configurations:
            limits_batched = batched.limit_estimates(configuration)
            limits_reference = reference.limit_estimates(configuration)
            assert limits_batched.shape == limits_reference.shape
            assert np.array_equal(limits_batched, limits_reference)

    def test_trace_and_estimates_bit_for_bit(self):
        algorithm = AmortizedMidpointAlgorithm()
        model = psi_model(4)
        execution = run_execution(
            algorithm, np.linspace(0.0, 1.0, 4), PsiBlockAdversary(4), 5
        )
        batched, reference = _estimators(
            algorithm, model, suffix_rounds=20, exploration_depth=1
        )
        trace_batched = batched.trace(execution.configurations)
        trace_reference = reference.trace(execution.configurations)
        assert len(trace_batched) == len(trace_reference)
        for estimate_b, estimate_r in zip(trace_batched, trace_reference):
            assert np.array_equal(estimate_b.limits, estimate_r.limits)
            assert estimate_b.lower_diameter == estimate_r.lower_diameter
            assert estimate_b.upper_diameter == estimate_r.upper_diameter

    def test_streamed_chunks_do_not_change_results(self):
        algorithm = AmortizedMidpointAlgorithm()
        model = psi_model(4)
        configuration = initial_configuration(algorithm, np.linspace(0.0, 1.0, 4))
        reference = ValencyEstimator(
            algorithm, model, suffix_rounds=15, exploration_depth=2, use_batch=False
        )
        expected = reference.limit_estimates(configuration)
        for chunk in (1, 2, 5, 4096):
            batched = ValencyEstimator(
                algorithm, model, suffix_rounds=15, exploration_depth=2,
                scenario_chunk=chunk,
            )
            assert np.array_equal(batched.limit_estimates(configuration), expected)

    def test_valencies_intersect_matches_reference(self):
        algorithm = AmortizedMidpointAlgorithm()
        model = psi_model(4)
        config_a = initial_configuration(algorithm, np.linspace(0.0, 1.0, 4))
        config_b = initial_configuration(algorithm, np.linspace(0.3, 1.3, 4))
        for tolerance in (1e-9, 1e-2, 2.0):
            batched, reference = _estimators(algorithm, model, suffix_rounds=30)
            assert batched.valencies_intersect(
                config_a, config_b, tolerance
            ) == reference.valencies_intersect(config_a, config_b, tolerance)

    def test_contraction_trace_covers_stateful_algorithm(self):
        algorithm = AmortizedMidpointAlgorithm()
        model = psi_model(4)
        trace_batched = valency_contraction_trace(
            algorithm, model, PsiBlockAdversary(4), np.linspace(0.0, 1.0, 4),
            rounds=5, suffix_rounds=20, use_batch=True,
        )
        trace_reference = valency_contraction_trace(
            algorithm, model, PsiBlockAdversary(4), np.linspace(0.0, 1.0, 4),
            rounds=5, suffix_rounds=20, use_batch=False,
        )
        assert trace_batched == trace_reference

    def test_restore_rejects_out_of_lockstep_states(self):
        from repro.exceptions import AlgorithmError

        algorithm = AmortizedMidpointAlgorithm()
        configuration = initial_configuration(algorithm, np.linspace(0.0, 1.0, 4))
        skewed = list(configuration.states)
        skewed[0] = type(skewed[0])(
            value=skewed[0].value,
            phase_min=skewed[0].phase_min,
            phase_max=skewed[0].phase_max,
            rounds_into_phase=skewed[0].rounds_into_phase + 1,
            phase_length=skewed[0].phase_length,
        )
        with pytest.raises(AlgorithmError):
            algorithm.batch_state_from_states(skewed)

    def test_round_trip_snapshot_restore(self):
        # batch_states (snapshot) and batch_state_from_states (restore) must
        # be exact inverses.
        algorithm = AmortizedMidpointAlgorithm()
        values = np.linspace(0.0, 1.0, 5).reshape(5, 1)
        batch_state = algorithm.batch_initial(values)
        batch_state = algorithm.batch_transition(
            batch_state, psi_model(5).graphs[0].adjacency, 1
        )
        restored = algorithm.batch_state_from_states(algorithm.batch_states(batch_state))
        assert np.array_equal(restored.value, batch_state.value)
        assert np.array_equal(restored.phase_min, batch_state.phase_min)
        assert np.array_equal(restored.phase_max, batch_state.phase_max)
        assert restored.rounds_into_phase == batch_state.rounds_into_phase
        assert restored.phase_length == batch_state.phase_length


def test_mid_execution_configurations_bit_for_bit():
    # Non-zero round numbers exercise the round bookkeeping of the batch path.
    algorithm, model = MidpointAlgorithm(), deaf_model(n=4)
    execution = run_execution(
        algorithm, np.linspace(0.0, 1.0, 4), GreedyDiameterAdversary(model), 4
    )
    configuration = execution.configurations[-1]
    assert configuration.round_number == 4
    batched, reference = _estimators(
        algorithm, model, suffix_rounds=30, exploration_depth=1
    )
    assert np.array_equal(
        batched.limit_estimates(configuration), reference.limit_estimates(configuration)
    )


def test_estimator_parameter_validation():
    algorithm, model = MidpointAlgorithm(), deaf_model(n=4)
    with pytest.raises(ValueError):
        ValencyEstimator(algorithm, model, suffix_rounds=0)
    with pytest.raises(ValueError):
        ValencyEstimator(algorithm, model, exploration_depth=-1)
    with pytest.raises(ValueError):
        ValencyEstimator(algorithm, model, scenario_chunk=0)


def test_certification_sweep_certifies_theorems():
    rows = run_certification_sweep(sizes=(4,), rounds=10, suffix_rounds=25)
    names = [row["name"] for row in rows]
    assert any("thm1" in name for name in names)
    assert any("thm2" in name for name in names)
    assert any("thm3" in name for name in names)
    for row in rows:
        assert {"paper", "output_rate", "valency_lower_rate", "certified"} <= set(row)
        assert row["certified"], row
    # The Ψ rows carry the packed α-diameter of the model.
    psi_rows = [row for row in rows if "thm3" in row["name"]]
    assert all(row["alpha_diameter"] >= 1.0 for row in psi_rows)


def test_certification_sweep_batch_matches_reference():
    batched = run_certification_sweep(sizes=(4,), rounds=8, suffix_rounds=20, use_batch=True)
    reference = run_certification_sweep(
        sizes=(4,), rounds=8, suffix_rounds=20, use_batch=False
    )
    for row_b, row_r in zip(batched, reference):
        assert row_b["output_rate"] == row_r["output_rate"]
        assert row_b["valency_lower_rate"] == row_r["valency_lower_rate"]
