"""Tests for the batched adversarial search engine and the chunked reductions.

Three properties are enforced:

* batched candidate evaluation makes *identical* choices to the per-graph
  reference loops on the Theorem 1 / Theorem 3 reference executions (and on
  generic greedy/lookahead runs), on both execution paths;
* :func:`repro.execution.run_adversarial_ensemble` commits the same graph
  sequences and outputs as independent per-scenario runs;
* the chunked masked reductions are bit-for-bit equal to the dense ones for
  every chunk configuration, including chunk=1 and chunk > B.
"""

import numpy as np
import pytest

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    MeanAlgorithm,
    MidpointAlgorithm,
    TwoAgentThirdsAlgorithm,
)
from repro.algorithms.base import (
    ConvexCombinationAlgorithm,
    get_masked_reduction_chunks,
    masked_max,
    masked_min,
    masked_min_max,
    masked_reduction_chunks,
    set_masked_reduction_chunks,
)
from repro.core.adversary import (
    GreedyDiameterAdversary,
    LookaheadDiameterAdversary,
    PsiBlockAdversary,
    TwoAgentAdversary,
)
from repro.exceptions import AlgorithmError, ExecutionError
from repro.execution import run_adversarial_ensemble, run_execution
from repro.execution.batch import _batch_diameters, _round_adjacency
from repro.execution.engine import _AdjacencyCache
from repro.graphs.families import complete_graph, cycle_graph
from repro.models.standard import deaf_model, two_agent_model
from repro.types import pairwise_diameters, running_argmax


class _SlowMidpoint(ConvexCombinationAlgorithm):
    """Midpoint clone without batch hooks, to exercise the fallback paths."""

    def combine(self, agent_id, received, round_number):
        values = np.vstack(list(received.values()))
        return (values.min(axis=0) + values.max(axis=0)) / 2.0


def _values(batch, n, d=1, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=(batch, n, d))


# --------------------------------------------------------------------------- #
# Batched vs per-graph adversary choices (single executions)
# --------------------------------------------------------------------------- #


class TestBatchedAdversaryChoices:
    CASES = [
        # (adversary factory taking use_batch, algorithm factory, n, rounds)
        (lambda ub: GreedyDiameterAdversary(deaf_model(n=4), use_batch=ub), MidpointAlgorithm, 4, 8),
        (lambda ub: LookaheadDiameterAdversary(deaf_model(n=3), 2, use_batch=ub), MidpointAlgorithm, 3, 6),
        (lambda ub: TwoAgentAdversary(use_batch=ub), TwoAgentThirdsAlgorithm, 2, 12),
        (lambda ub: PsiBlockAdversary(5, use_batch=ub), MidpointAlgorithm, 5, 10),
        (lambda ub: PsiBlockAdversary(5, use_batch=ub), AmortizedMidpointAlgorithm, 5, 9),
        (lambda ub: GreedyDiameterAdversary(deaf_model(n=4), use_batch=ub), MeanAlgorithm, 4, 7),
    ]

    @pytest.mark.parametrize("use_fast_path", [True, False, None])
    @pytest.mark.parametrize("case_index", range(len(CASES)))
    def test_batched_matches_reference_loop(self, use_fast_path, case_index):
        make_adversary, make_algorithm, n, rounds = self.CASES[case_index]
        values = list(np.linspace(0.0, 1.0, n) + np.arange(n) % 3)
        batched = run_execution(
            make_algorithm(), values, make_adversary(True), rounds,
            use_fast_path=use_fast_path,
        )
        reference = run_execution(
            make_algorithm(), values, make_adversary(False), rounds,
            use_fast_path=use_fast_path,
        )
        assert batched.graphs == reference.graphs
        for lhs, rhs in zip(batched.configurations, reference.configurations):
            np.testing.assert_array_equal(lhs.outputs, rhs.outputs)

    def test_theorem_1_reference_execution(self):
        # The Theorem 1 adversary must still realize contraction rate 1/3
        # against Algorithm 1 with batched candidate evaluation.
        from repro.execution.metrics import empirical_contraction_rate

        execution = run_execution(
            TwoAgentThirdsAlgorithm(), [0.0, 1.0], TwoAgentAdversary(), 25
        )
        assert empirical_contraction_rate(execution) == pytest.approx(1.0 / 3.0, abs=1e-6)

    def test_theorem_3_reference_execution(self):
        # The Theorem 3 adversary plays sigma blocks; batched and reference
        # block picks must agree including the recorded deaf-agent choices.
        n, rounds = 5, 12
        values = [0.0, 1.0, 2.0, 3.0, 4.0]
        batched_adversary = PsiBlockAdversary(n, use_batch=True)
        reference_adversary = PsiBlockAdversary(n, use_batch=False)
        batched = run_execution(MidpointAlgorithm(), values, batched_adversary, rounds)
        reference = run_execution(MidpointAlgorithm(), values, reference_adversary, rounds)
        assert batched.graphs == reference.graphs
        assert batched_adversary.chosen_blocks == reference_adversary.chosen_blocks

    def test_simulate_outputs_batch_matches_per_graph(self):
        captured = {}

        class Probe(GreedyDiameterAdversary):
            def choose(self, context):
                graphs = list(self.model)
                batched = context.simulate_outputs_batch(graphs)
                stacked = np.stack(
                    [np.asarray(context.simulate_outputs(g), dtype=float) for g in graphs]
                )
                captured.setdefault("pairs", []).append((batched, stacked))
                return super().choose(context)

        for fast in (True, False):
            captured.clear()
            run_execution(
                MidpointAlgorithm(), [0.0, 1.0, 2.0], Probe(deaf_model(n=3)), 4,
                use_fast_path=fast,
            )
            assert captured["pairs"]
            for batched, stacked in captured["pairs"]:
                np.testing.assert_array_equal(batched, stacked)

    def test_simulate_sequences_batch_rejects_mixed_lengths(self):
        class Probe(GreedyDiameterAdversary):
            def choose(self, context):
                graphs = list(self.model)
                with pytest.raises(ExecutionError):
                    context.simulate_sequences_batch([[graphs[0]], [graphs[0]] * 2])
                return super().choose(context)

        run_execution(MidpointAlgorithm(), [0.0, 1.0, 2.0], Probe(deaf_model(n=3)), 1)


# --------------------------------------------------------------------------- #
# Batched adversarial ensembles
# --------------------------------------------------------------------------- #


class TestRunAdversarialEnsemble:
    @pytest.mark.parametrize(
        "make_algorithm,make_adversary,n,rounds",
        [
            (MidpointAlgorithm, lambda: GreedyDiameterAdversary(deaf_model(n=5)), 5, 7),
            (MidpointAlgorithm, lambda: LookaheadDiameterAdversary(deaf_model(n=4), 2), 4, 5),
            (MidpointAlgorithm, lambda: PsiBlockAdversary(5), 5, 10),
            (AmortizedMidpointAlgorithm, lambda: PsiBlockAdversary(5), 5, 8),
            (TwoAgentThirdsAlgorithm, TwoAgentAdversary, 2, 12),
            (_SlowMidpoint, lambda: GreedyDiameterAdversary(deaf_model(n=4)), 4, 5),
            # History-dependent candidate sets: per-scenario ensemble plans.
            (
                MidpointAlgorithm,
                lambda: GreedyDiameterAdversary(deaf_model(n=5), avoid_repeat=True),
                5,
                9,
            ),
            (
                AmortizedMidpointAlgorithm,
                lambda: GreedyDiameterAdversary(deaf_model(n=5), avoid_repeat=True),
                5,
                8,
            ),
        ],
    )
    def test_matches_per_scenario_runs(self, make_algorithm, make_adversary, n, rounds):
        batch = 4
        values = _values(batch, n, seed=11)
        ensemble = run_adversarial_ensemble(
            make_algorithm(), values, make_adversary(), rounds
        )
        assert ensemble.rounds == rounds
        for scenario in range(batch):
            single = run_execution(
                make_algorithm(), values[scenario], make_adversary(), rounds
            )
            assert ensemble.scenario_graphs(scenario) == single.graphs
            np.testing.assert_array_equal(
                ensemble.final_outputs[scenario], single.final_configuration.outputs
            )

    def test_multidimensional_values(self):
        batch, n, rounds = 3, 4, 6
        values = _values(batch, n, d=3, seed=2)
        ensemble = run_adversarial_ensemble(
            MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=n)), rounds
        )
        for scenario in range(batch):
            single = run_execution(
                MidpointAlgorithm(), values[scenario],
                GreedyDiameterAdversary(deaf_model(n=n)), rounds,
            )
            assert ensemble.scenario_graphs(scenario) == single.graphs
            np.testing.assert_array_equal(
                ensemble.final_outputs[scenario], single.final_configuration.outputs
            )

    def test_record_every(self):
        values = _values(2, 4, seed=5)
        ensemble = run_adversarial_ensemble(
            MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=4)), 7,
            record_every=3,
        )
        assert ensemble.recorded_rounds == [0, 3, 6, 7]
        assert len(ensemble.round_choices) == 7

    def test_zero_rounds(self):
        values = _values(2, 4, seed=6)
        ensemble = run_adversarial_ensemble(
            MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=4)), 0
        )
        assert ensemble.recorded_rounds == [0]
        assert ensemble.round_choices == []

    def test_rejects_non_adversarial_pattern(self):
        from repro.models.patterns import ConstantPattern

        with pytest.raises(ExecutionError):
            run_adversarial_ensemble(
                MidpointAlgorithm(), _values(2, 3), ConstantPattern(complete_graph(3)), 2
            )

    def test_two_agent_plan_rejects_wrong_n(self):
        with pytest.raises(ExecutionError):
            run_adversarial_ensemble(
                MidpointAlgorithm(), _values(2, 3), TwoAgentAdversary(), 2
            )

    def test_scenario_labels(self):
        values = _values(3, 4, seed=8)
        labels = ["a", "b", "c"]
        ensemble = run_adversarial_ensemble(
            MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=4)), 3,
            scenario_labels=labels,
        )
        assert ensemble.scenario_labels == labels
        with pytest.raises(ExecutionError):
            run_adversarial_ensemble(
                MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=4)), 3,
                scenario_labels=["too", "few"],
            )


# --------------------------------------------------------------------------- #
# History-dependent adversaries (per-scenario plan API)
# --------------------------------------------------------------------------- #


class TestHistoryDependentAdversary:
    def test_single_run_batched_matches_reference(self):
        model = deaf_model(n=5)
        values = list(np.linspace(0.0, 1.0, 5))
        batched = run_execution(
            MidpointAlgorithm(), values,
            GreedyDiameterAdversary(model, use_batch=True, avoid_repeat=True), 10,
        )
        reference = run_execution(
            MidpointAlgorithm(), values,
            GreedyDiameterAdversary(model, use_batch=False, avoid_repeat=True), 10,
            use_fast_path=False,
        )
        assert batched.graphs == reference.graphs
        np.testing.assert_array_equal(
            batched.final_configuration.outputs, reference.final_configuration.outputs
        )

    def test_never_repeats_previous_graph(self):
        model = deaf_model(n=4)
        execution = run_execution(
            MidpointAlgorithm(), np.linspace(0.0, 1.0, 4),
            GreedyDiameterAdversary(model, avoid_repeat=True), 12,
        )
        for previous, current in zip(execution.graphs, execution.graphs[1:]):
            assert current is not previous

    def test_ensemble_diverging_histories_match_per_scenario_runs(self):
        # Scenario histories diverge (different initial values pick different
        # first graphs), so the shared-plan API cannot express the candidate
        # sets; the per-scenario plan path must still match choice-for-choice.
        model = deaf_model(n=5)
        values = _values(6, 5, seed=21)
        ensemble = run_adversarial_ensemble(
            MidpointAlgorithm(), values,
            GreedyDiameterAdversary(model, avoid_repeat=True), 10,
        )
        assert ensemble.batched is True
        committed_first = {ensemble.scenario_graphs(b)[0] for b in range(6)}
        for scenario in range(6):
            single = run_execution(
                MidpointAlgorithm(), values[scenario],
                GreedyDiameterAdversary(model, avoid_repeat=True), 10,
            )
            assert ensemble.scenario_graphs(scenario) == single.graphs
            np.testing.assert_array_equal(
                ensemble.final_outputs[scenario], single.final_configuration.outputs
            )
            for previous, current in zip(single.graphs, single.graphs[1:]):
                assert current is not previous
        assert len(committed_first) >= 1  # sanity: the sweep actually ran

    def test_uniform_plan_validation(self):
        from repro.exceptions import EnsembleShapeError
        from repro.models.patterns import AdversarialPattern, EnsemblePlan

        model = deaf_model(n=4)
        graphs = list(model)

        class _RaggedPlans(AdversarialPattern):
            def choose(self, context):
                return graphs[0]

            def ensemble_plans(self, round_number, n, histories):
                # Scenario 0 sees two candidates, scenario 1 only one.
                return (
                    EnsemblePlan(candidates=((graphs[0],), (graphs[1],)), commit_rounds=1),
                    EnsemblePlan(candidates=((graphs[0],),), commit_rounds=1),
                )

        with pytest.raises(EnsembleShapeError):
            run_adversarial_ensemble(MidpointAlgorithm(), _values(2, 4), _RaggedPlans(), 3)

    def test_wrong_plan_count_rejected(self):
        from repro.exceptions import EnsembleShapeError
        from repro.models.patterns import AdversarialPattern, EnsemblePlan

        model = deaf_model(n=4)
        graphs = list(model)

        class _WrongCount(AdversarialPattern):
            def choose(self, context):
                return graphs[0]

            def ensemble_plans(self, round_number, n, histories):
                return (
                    EnsemblePlan(candidates=((graphs[0],),), commit_rounds=1),
                )

        # threads=1 pins the serial route: the parallel backend validates the
        # plan count per shard, where a constant-count adversary may happen
        # to match a shard's size.
        with pytest.raises(EnsembleShapeError):
            run_adversarial_ensemble(
                MidpointAlgorithm(), _values(3, 4), _WrongCount(), 2, threads=1
            )


# --------------------------------------------------------------------------- #
# Chunked masked reductions
# --------------------------------------------------------------------------- #


def _dense_masked_min(adjacency, values):
    mask = np.swapaxes(np.asarray(adjacency, dtype=bool), -1, -2)[..., None]
    return np.where(mask, values[..., None, :, :], np.inf).min(axis=-2)


class TestChunkedReductions:
    SHAPES = [
        ((6, 6), (6, 2)),          # single graph, single scenario
        ((5, 6, 6), (5, 6, 2)),    # per-scenario graphs
        ((3, 6, 6), (5, 1, 6, 2)), # candidate axis crossed with scenarios
        ((6, 6), (5, 6, 1)),       # shared graph over an ensemble
        ((4, 6, 6), (6, 3)),       # stacked candidates, shared values (scan path)
    ]

    @pytest.mark.parametrize("batch_chunk", [1, 2, 3, 7, 100, "dense", "auto"])
    @pytest.mark.parametrize("receiver_chunk", [1, 2, 4, 100, "dense", "auto"])
    def test_bitwise_equal_to_dense(self, batch_chunk, receiver_chunk):
        rng = np.random.default_rng(0)
        for adjacency_shape, values_shape in self.SHAPES:
            n = adjacency_shape[-1]
            adjacency = rng.random(adjacency_shape) < 0.4
            adjacency[..., np.arange(n), np.arange(n)] = True
            values = rng.normal(size=values_shape)
            expected_lo = _dense_masked_min(adjacency, values)
            expected_hi = -_dense_masked_min(adjacency, -values)
            with masked_reduction_chunks(batch=batch_chunk, receivers=receiver_chunk):
                np.testing.assert_array_equal(masked_min(adjacency, values), expected_lo)
                np.testing.assert_array_equal(masked_max(adjacency, values), expected_hi)
                lo, hi = masked_min_max(adjacency, values)
            np.testing.assert_array_equal(lo, expected_lo)
            np.testing.assert_array_equal(hi, expected_hi)

    def test_chunk_one_and_chunk_larger_than_batch(self):
        rng = np.random.default_rng(1)
        batch = 3
        adjacency = rng.random((batch, 5, 5)) < 0.5
        adjacency[..., np.arange(5), np.arange(5)] = True
        values = rng.normal(size=(batch, 5, 4))
        expected = _dense_masked_min(adjacency, values)
        for chunk in (1, batch + 10):
            with masked_reduction_chunks(batch=chunk, receivers=chunk):
                np.testing.assert_array_equal(masked_min(adjacency, values), expected)

    def test_rows_without_neighbors_fill(self):
        adjacency = np.zeros((2, 3, 3), dtype=bool)  # not even self-loops
        values = np.ones((3, 2))
        assert np.all(masked_min(adjacency, values) == np.inf)
        assert np.all(masked_max(adjacency, values) == -np.inf)

    def test_configuration_validation_and_restore(self):
        with pytest.raises(AlgorithmError):
            set_masked_reduction_chunks(batch=0)
        with pytest.raises(AlgorithmError):
            set_masked_reduction_chunks(receivers="sometimes")
        before = get_masked_reduction_chunks()
        with masked_reduction_chunks(batch=2, receivers=3):
            assert get_masked_reduction_chunks() == {"batch": 2, "receivers": 3}
        assert get_masked_reduction_chunks() == before

    def test_executions_identical_across_chunkings(self):
        values = _values(4, 6, seed=9)
        pattern_graphs = [complete_graph(6), cycle_graph(6)]
        from repro.execution import run_pattern_ensemble
        from repro.models.patterns import PeriodicPattern

        with masked_reduction_chunks(batch="dense", receivers="dense"):
            dense = run_pattern_ensemble(
                MidpointAlgorithm(), values, PeriodicPattern(pattern_graphs), 9
            )
        with masked_reduction_chunks(batch=1, receivers=2):
            chunked = run_pattern_ensemble(
                MidpointAlgorithm(), values, PeriodicPattern(pattern_graphs), 9
            )
        np.testing.assert_array_equal(dense.recorded_outputs, chunked.recorded_outputs)


# --------------------------------------------------------------------------- #
# Selection helpers
# --------------------------------------------------------------------------- #


class TestSelectionHelpers:
    def test_pairwise_diameters_d1_matches_dense(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(6, 9, 1))
        diffs = points[..., :, None, :] - points[..., None, :, :]
        dense = np.sqrt(np.sum(diffs * diffs, axis=-1)).max(axis=(-1, -2))
        np.testing.assert_array_equal(pairwise_diameters(points), dense)

    def test_pairwise_diameters_matches_scalar_diameter(self):
        from repro.types import diameter

        rng = np.random.default_rng(5)
        stacked = rng.normal(size=(4, 5, 3))
        batched = pairwise_diameters(stacked)
        for index in range(4):
            assert batched[index] == diameter(stacked[index])

    def test_running_argmax_tie_breaking(self):
        assert running_argmax([1.0, 1.0, 1.0]) == 0
        assert running_argmax([0.5, 1.0, 1.0]) == 1
        assert running_argmax([0.0, 0.0, 0.5]) == 2
        # improvements below the tolerance do not move the pick
        assert running_argmax([1.0, 1.0 + 5e-16]) == 0

    def test_batch_diameters_d1_and_pruned(self):
        rng = np.random.default_rng(6)
        for shape in [(5, 8, 1), (4, 12, 3), (3, 2, 2), (2, 1, 4)]:
            outputs = rng.normal(size=shape)
            diffs = outputs[:, :, None, :] - outputs[:, None, :, :]
            dense = np.sqrt((diffs * diffs).sum(axis=-1)).max(axis=(-1, -2))
            if shape[1] < 2:
                dense = np.zeros(shape[0])
            np.testing.assert_allclose(
                _batch_diameters(outputs), dense, rtol=1e-12, atol=1e-14
            )


# --------------------------------------------------------------------------- #
# Adjacency caching
# --------------------------------------------------------------------------- #


class TestAdjacencyCache:
    def test_repeated_graph_lists_reuse_the_stacked_tensor(self):
        cache = _AdjacencyCache()
        graphs = (complete_graph(4), cycle_graph(4), complete_graph(4))
        first = cache.stacked(graphs)
        second = cache.stacked(graphs)
        assert first is second
        np.testing.assert_array_equal(
            first, np.stack([graph.adjacency for graph in graphs])
        )

    def test_uniform_round_broadcasts_without_stacking(self):
        graph = complete_graph(3)
        adjacency = _round_adjacency([graph, graph, graph], 3, 3)
        assert adjacency.shape == (3, 3)
        assert adjacency is graph.adjacency

    def test_cache_bounded(self):
        cache = _AdjacencyCache(max_entries=1)
        first = cache.stacked((complete_graph(3), cycle_graph(3)))
        # A different list does not evict the first entry (insert-only cap).
        cache.stacked((cycle_graph(3), complete_graph(3)))
        again = cache.stacked((complete_graph(3), cycle_graph(3)))
        np.testing.assert_array_equal(first, again)
