"""Seeded-random equivalence of the bitset-packed graph kernels.

Every packed/stacked kernel must agree exactly with its per-graph reference:
products over random graph stacks, reachability/roots/rootedness/non-split
over stacks, the α relation matrix against per-pair ``alpha_related`` calls,
α/β classes and the α-diameter against the per-pair reference path, and the
packed masked reductions against the dense path bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import (
    masked_min,
    masked_min_max,
    masked_reduction_impl,
    set_masked_reduction_impl,
)
from repro.exceptions import AlgorithmError, GraphError
from repro.graphs.digraph import CommunicationGraph
from repro.graphs.families import complete_graph, deaf_family, psi_family, two_agent_graphs
from repro.graphs.generators import random_graph, random_nonsplit_graph, random_rooted_graph
from repro.graphs.packed import (
    in_neighborhood_ids,
    is_nonsplit_stack,
    is_rooted_stack,
    is_strongly_connected_stack,
    product_sequence_stack,
    product_stack,
    reachability_stack,
    roots_stack,
    stack_adjacencies,
)
from repro.graphs.products import product, product_sequence, product_sequence_batch
from repro.graphs.properties import (
    is_nonsplit,
    is_rooted,
    is_strongly_connected,
    reachability_matrix,
    roots,
)
from repro.graphs.relations import (
    alpha_classes,
    alpha_diameter,
    alpha_related,
    alpha_related_union,
    alpha_relation_matrix,
    alpha_step_graph,
    alpha_witness_tensor,
    beta_classes,
)
from repro.types import pack_bool_rows, packed_first_true, packed_last_true, packed_row_ids


def _random_stack(n, count, seed, probability=0.4):
    rng = np.random.default_rng(seed)
    return [random_graph(n, rng, probability) for _ in range(count)]


# --------------------------------------------------------------------------- #
# Bit kernels in types.py
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("length", [1, 7, 8, 9, 31, 64, 65])
def test_packed_first_last_true_match_dense_scan(length):
    rng = np.random.default_rng(length)
    rows = rng.random((40, length)) < 0.2
    rows[0] = False  # an all-false row exercises the sentinels
    rows[1] = True
    packed = pack_bool_rows(rows)
    first = packed_first_true(packed, length)
    last = packed_last_true(packed, length)
    for row, f, l in zip(rows, first, last):
        hits = np.nonzero(row)[0]
        assert f == (hits[0] if hits.size else length)
        assert l == (hits[-1] if hits.size else -1)


def test_packed_row_ids_group_equal_rows():
    rows = np.array([[1, 0, 1], [0, 1, 1], [1, 0, 1], [0, 0, 0]], dtype=bool)
    ids = packed_row_ids(pack_bool_rows(rows))
    assert ids[0] == ids[2]
    assert len({int(ids[0]), int(ids[1]), int(ids[3])}) == 3


# --------------------------------------------------------------------------- #
# Stacked structural kernels
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("seed,n,count", [(0, 4, 6), (1, 7, 10), (2, 12, 5), (3, 33, 4)])
def test_stacked_structure_kernels_match_scalar(seed, n, count):
    rng = np.random.default_rng(seed)
    graphs = (
        [random_graph(n, rng, 0.25) for _ in range(count)]
        + [random_rooted_graph(n, rng) for _ in range(2)]
        + [random_nonsplit_graph(n, rng) for _ in range(2)]
    )
    stack = stack_adjacencies(graphs)
    reach = reachability_stack(stack)
    for index, graph in enumerate(graphs):
        assert np.array_equal(reach[index], reachability_matrix(graph))
        assert frozenset(np.nonzero(roots_stack(stack)[index])[0].tolist()) == roots(graph)
    assert np.array_equal(is_rooted_stack(stack), [is_rooted(g) for g in graphs])
    assert np.array_equal(is_nonsplit_stack(stack), [is_nonsplit(g) for g in graphs])
    assert np.array_equal(
        is_strongly_connected_stack(stack), [is_strongly_connected(g) for g in graphs]
    )


def test_in_neighborhood_ids_match_in_neighbors():
    graphs = _random_stack(6, 8, seed=9)
    ids = in_neighborhood_ids(stack_adjacencies(graphs))
    for gi, g in enumerate(graphs):
        for hi, h in enumerate(graphs):
            for agent in range(6):
                assert (ids[gi, agent] == ids[hi, agent]) == (
                    g.in_neighbors(agent) == h.in_neighbors(agent)
                )


def test_product_stack_matches_product():
    first = _random_stack(5, 7, seed=4)
    second = _random_stack(5, 7, seed=5)
    batched = product_stack(stack_adjacencies(first), stack_adjacencies(second))
    for index in range(7):
        assert np.array_equal(batched[index], product(first[index], second[index]).adjacency)


def test_product_sequence_batch_matches_sequential_products():
    sequences = [_random_stack(6, 5, seed=20 + i) for i in range(9)]
    batched = product_sequence_batch(sequences)
    for index, sequence in enumerate(sequences):
        assert np.array_equal(batched[index], product_sequence(sequence).adjacency)


def test_product_sequence_batch_rejects_ragged_input():
    graphs = _random_stack(4, 3, seed=0)
    with pytest.raises(GraphError):
        product_sequence_batch([])
    with pytest.raises(GraphError):
        product_sequence_batch([graphs, graphs[:2]])


def test_product_sequence_stack_needs_a_round():
    with pytest.raises(GraphError):
        product_sequence_stack([])


def test_stack_adjacencies_validates():
    with pytest.raises(GraphError):
        stack_adjacencies([])
    with pytest.raises(GraphError):
        stack_adjacencies([complete_graph(3), complete_graph(4)])


# --------------------------------------------------------------------------- #
# Vectorized α machinery vs per-pair reference
# --------------------------------------------------------------------------- #

def _models():
    rng = np.random.default_rng(11)
    return [
        psi_family(4),
        psi_family(6),
        deaf_family(complete_graph(5)),
        list(two_agent_graphs()),
        [random_graph(5, rng, 0.35) for _ in range(9)],
        [random_rooted_graph(6, rng) for _ in range(7)],
    ]


@pytest.mark.parametrize("use_union_form", [False, True])
def test_alpha_relation_matrix_matches_pairwise_reference(use_union_form):
    related = alpha_related_union if use_union_form else alpha_related
    for graphs in _models():
        matrix = alpha_relation_matrix(graphs, use_union_form=use_union_form)
        for gi, g in enumerate(graphs):
            for hi, h in enumerate(graphs):
                expected = any(related(g, h, witness) for witness in graphs)
                assert bool(matrix[gi, hi]) == expected


def test_alpha_witness_tensor_matches_per_witness_reference():
    for graphs in _models()[:4]:
        tensor = alpha_witness_tensor(graphs)
        for wi, witness in enumerate(graphs):
            for gi, g in enumerate(graphs):
                for hi, h in enumerate(graphs):
                    assert bool(tensor[wi, gi, hi]) == alpha_related(g, h, witness)


@pytest.mark.parametrize("use_union_form", [False, True])
def test_alpha_step_graph_packed_equals_reference(use_union_form):
    for graphs in _models():
        packed = alpha_step_graph(graphs, use_union_form=use_union_form)
        reference = alpha_step_graph(graphs, use_union_form=use_union_form, use_packed=False)
        assert packed == reference


@pytest.mark.parametrize("use_union_form", [False, True])
def test_alpha_and_beta_classes_packed_equal_reference(use_union_form):
    for graphs in _models():
        assert set(alpha_classes(graphs, use_union_form=use_union_form)) == set(
            alpha_classes(graphs, use_union_form=use_union_form, use_packed=False)
        )
        assert set(beta_classes(graphs, use_union_form=use_union_form)) == set(
            beta_classes(graphs, use_union_form=use_union_form, use_packed=False)
        )


@pytest.mark.parametrize("use_union_form", [False, True])
def test_alpha_diameter_packed_equals_reference(use_union_form):
    for graphs in _models():
        assert alpha_diameter(graphs, use_union_form=use_union_form) == alpha_diameter(
            graphs, use_union_form=use_union_form, use_packed=False
        )


def test_alpha_diameter_packed_disconnected_is_infinite():
    # Two isolated-in-neighborhood worlds that no witness connects: deaf
    # variants with *different* base graphs that never share in-neighborhoods.
    g1 = CommunicationGraph(4, edges=[(0, 1), (1, 2), (2, 3)], name="chain")
    g2 = complete_graph(4)
    value = alpha_diameter([g1, g2])
    assert value == alpha_diameter([g1, g2], use_packed=False)


def test_alpha_classes_psi32_vectorized_matches_reference():
    graphs = psi_family(32)
    assert set(alpha_classes(graphs)) == set(alpha_classes(graphs, use_packed=False))
    assert set(beta_classes(graphs)) == set(beta_classes(graphs, use_packed=False))
    assert alpha_diameter(graphs) == alpha_diameter(graphs, use_packed=False)


# --------------------------------------------------------------------------- #
# Packed masked reductions vs dense, bit-for-bit
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("shape", [(5, 40, 1), (3, 33, 2), (7, 16, 3), (2, 3, 65, 1)])
def test_packed_masked_reduction_matches_dense(shape):
    *lead, n, d = shape
    rng = np.random.default_rng(sum(shape))
    values = rng.normal(size=(*lead, n, d))
    adjacency = rng.random((*lead, n, n)) < 0.3
    diag = np.arange(n)
    adjacency[..., diag, diag] = True
    with masked_reduction_impl("dense"):
        lo_dense, hi_dense = masked_min_max(adjacency, values)
    with masked_reduction_impl("packed"):
        lo_packed, hi_packed = masked_min_max(adjacency, values)
    assert np.array_equal(lo_dense, lo_packed)
    assert np.array_equal(hi_dense, hi_packed)


def test_packed_masked_reduction_handles_empty_in_neighborhoods():
    rng = np.random.default_rng(3)
    adjacency = np.zeros((4, 10, 10), dtype=bool)
    adjacency[:, 2, :] = True  # only agent 2 sends; most receivers hear one sender
    values = rng.normal(size=(4, 10, 1))
    with masked_reduction_impl("dense"):
        lo_dense, hi_dense = masked_min_max(adjacency, values)
    with masked_reduction_impl("packed"):
        lo_packed, hi_packed = masked_min_max(adjacency, values)
    assert np.array_equal(lo_dense, lo_packed)
    assert np.array_equal(hi_dense, hi_packed)


def test_packed_masked_reduction_nan_values_fall_back_to_dense():
    values = np.array([[[0.0], [np.nan], [2.0]]])
    adjacency = np.ones((1, 3, 3), dtype=bool)
    with masked_reduction_impl("packed"):
        lo = masked_min(adjacency, values)
    with masked_reduction_impl("dense"):
        lo_dense = masked_min(adjacency, values)
    assert np.array_equal(np.isnan(lo), np.isnan(lo_dense))


def test_packed_masked_reduction_auto_fires_on_large_stacks():
    # Above the auto threshold the packed path must still be bit-for-bit.
    rng = np.random.default_rng(8)
    values = rng.normal(size=(48, 160, 1))
    adjacency = rng.random((48, 160, 160)) < 0.1
    diag = np.arange(160)
    adjacency[:, diag, diag] = True
    with masked_reduction_impl("auto"):
        lo_auto, hi_auto = masked_min_max(adjacency, values)
    with masked_reduction_impl("dense"):
        lo_dense, hi_dense = masked_min_max(adjacency, values)
    assert np.array_equal(lo_auto, lo_dense)
    assert np.array_equal(hi_auto, hi_dense)


def test_masked_reduction_impl_validation_and_restore():
    with pytest.raises(AlgorithmError):
        set_masked_reduction_impl("bogus")
    with masked_reduction_impl("packed"):
        pass  # restored on exit
    values = np.zeros((2, 3, 1))
    adjacency = np.ones((2, 3, 3), dtype=bool)
    assert masked_min(adjacency, values).shape == (2, 3, 1)


# --------------------------------------------------------------------------- #
# Bitset-resident adjacency cache + vectorized packed column gather
# --------------------------------------------------------------------------- #


def test_packed_receive_rows_is_cached_and_correct():
    from repro.types import pack_bool_rows

    rng = np.random.default_rng(11)
    graph = random_graph(12, rng, 0.4)
    packed = graph.packed_receive_rows
    assert packed is graph.packed_receive_rows  # computed once, shared
    assert not packed.flags.writeable
    assert np.array_equal(packed, pack_bool_rows(graph.adjacency.T))


def test_packed_in_neighborhoods_matches_raw_stack_packing():
    from repro.graphs.packed import (
        graph_in_neighborhood_ids,
        packed_in_neighborhoods,
        pack_adjacency_rows,
    )

    rng = np.random.default_rng(12)
    graphs = [random_graph(10, rng, 0.5) for _ in range(4)]
    stack = stack_adjacencies(graphs)
    cached = packed_in_neighborhoods(graphs)
    raw = pack_adjacency_rows(stack.swapaxes(-1, -2))
    assert np.array_equal(cached, raw)
    assert np.array_equal(graph_in_neighborhood_ids(graphs), in_neighborhood_ids(stack))
    # The stacked rows come straight out of each graph's resident bitset.
    assert np.shares_memory(
        packed_in_neighborhoods([graphs[0]]), graphs[0].packed_receive_rows
    ) or np.array_equal(packed_in_neighborhoods([graphs[0]])[0], graphs[0].packed_receive_rows)


def test_packed_in_neighborhoods_rejects_mixed_sizes():
    from repro.graphs.packed import packed_in_neighborhoods

    with pytest.raises(GraphError):
        packed_in_neighborhoods([complete_graph(4), complete_graph(5)])
    with pytest.raises(GraphError):
        packed_in_neighborhoods([])


def test_alpha_machinery_uses_graph_bitset_caches():
    # The default (non-union) witness tensor must produce identical
    # partitions while reading packed rows from the graphs' caches.
    rng = np.random.default_rng(13)
    graphs = [random_graph(7, rng, 0.4) for _ in range(5)]
    packed_classes = alpha_classes(graphs, use_packed=True)
    reference_classes = alpha_classes(graphs, use_packed=False)
    assert packed_classes == reference_classes
    for graph in graphs:
        assert graph._packed_receive is not None  # cache was populated


def test_packed_gather_on_graph_adjacency_bit_for_bit():
    # Regression for the packed column gather: a single-graph adjacency
    # broadcast over a value ensemble must equal the dense path exactly.
    rng = np.random.default_rng(14)
    for trial in range(20):
        n = int(rng.integers(2, 40))
        d = int(rng.integers(1, 3))
        lead = int(rng.integers(2, 8))
        graph = random_graph(n, rng, float(rng.uniform(0.1, 0.9)))
        values = rng.uniform(-4.0, 4.0, size=(lead, n, d))
        with masked_reduction_impl("dense"):
            lo_dense, hi_dense = masked_min_max(graph.adjacency, values)
        with masked_reduction_impl("packed"):
            lo_packed, hi_packed = masked_min_max(graph.adjacency, values)
        assert np.array_equal(lo_dense, lo_packed), trial
        assert np.array_equal(hi_dense, hi_packed), trial


def test_packed_gather_on_memoized_stacks_matches_dense():
    from repro.execution.engine import _AdjacencyCache

    rng = np.random.default_rng(15)
    graphs = tuple(random_graph(24, rng, 0.3) for _ in range(5))
    stacked = _AdjacencyCache().stacked(graphs)
    values = rng.uniform(-1.0, 1.0, size=(5, 24, 2))
    with masked_reduction_impl("dense"):
        lo_dense, hi_dense = masked_min_max(stacked, values)
    with masked_reduction_impl("packed"):
        lo_packed, hi_packed = masked_min_max(stacked, values)
    assert np.array_equal(lo_dense, lo_packed)
    assert np.array_equal(hi_dense, hi_packed)


def test_packed_gather_handles_isolated_receivers():
    # Receivers with no in-neighbors at all (no self-loop in the raw mask)
    # must keep the +/-inf sentinel semantics of the dense path.
    values = np.array([[[0.5], [1.5], [-2.0]], [[3.0], [0.0], [1.0]]])
    adjacency = np.zeros((2, 3, 3), dtype=bool)
    adjacency[0, 0, 1] = True  # 1 hears 0 in scenario 0; everyone else deaf
    with masked_reduction_impl("packed"):
        lo_packed, hi_packed = masked_min_max(adjacency, values)
    with masked_reduction_impl("dense"):
        lo_dense, hi_dense = masked_min_max(adjacency, values)
    assert np.array_equal(lo_dense, lo_packed)
    assert np.array_equal(hi_dense, hi_packed)
    assert lo_packed[0, 0, 0] == np.inf and hi_packed[0, 0, 0] == -np.inf


class TestFusedMaskResolutionCount:
    """Callers wanting both extremes must pay for one mask resolution, not two.

    ``masked_min_max`` / ``masked_extreme_pair`` fuse the min and max
    reductions over a single :func:`receive_mask` call on every
    implementation (dense, chunked, sort-and-scan, packed); the amortized
    midpoint's vectorized transition rides that kernel, so each round
    resolves its adjacency exactly once.
    """

    @pytest.fixture()
    def count_mask_resolutions(self, monkeypatch):
        import repro.algorithms.base as base_module

        counter = {"calls": 0}
        original = base_module.receive_mask

        def counting(adjacency):
            counter["calls"] += 1
            return original(adjacency)

        monkeypatch.setattr(base_module, "receive_mask", counting)
        return counter

    @pytest.mark.parametrize("impl", ["auto", "dense", "packed"])
    def test_masked_min_max_resolves_once(self, count_mask_resolutions, impl):
        rng = np.random.default_rng(40)
        values = rng.uniform(-1.0, 1.0, size=(3, 8, 2))
        adjacency = rng.random((3, 8, 8)) < 0.5
        with masked_reduction_impl(impl):
            lo, hi = masked_min_max(adjacency, values)
        assert count_mask_resolutions["calls"] == 1
        # Sanity: still equal to two separate (twice-resolving) reductions.
        assert np.array_equal(lo, masked_min(adjacency, values))
        from repro.algorithms.base import masked_max

        assert np.array_equal(hi, masked_max(adjacency, values))
        assert count_mask_resolutions["calls"] == 3

    @pytest.mark.parametrize("impl", ["auto", "dense", "packed"])
    def test_extreme_pair_on_distinct_tensors_resolves_once(
        self, count_mask_resolutions, impl
    ):
        from repro.algorithms.base import masked_extreme_pair

        rng = np.random.default_rng(41)
        mins = rng.uniform(-1.0, 1.0, size=(2, 10, 1))
        maxs = rng.uniform(-1.0, 1.0, size=(2, 10, 1))
        adjacency = rng.random((2, 10, 10)) < 0.4
        with masked_reduction_impl(impl):
            masked_extreme_pair(adjacency, mins, maxs)
        assert count_mask_resolutions["calls"] == 1

    def test_amortized_midpoint_round_resolves_once(self, count_mask_resolutions):
        from repro.algorithms import AmortizedMidpointAlgorithm

        rng = np.random.default_rng(42)
        algorithm = AmortizedMidpointAlgorithm()
        state = algorithm.batch_initial(rng.uniform(0.0, 1.0, size=(4, 6, 1)))
        adjacency = np.broadcast_to(
            complete_graph(6).adjacency, (4, 6, 6)
        ).copy()
        for round_number in range(1, 4):
            algorithm.batch_transition(state, adjacency, round_number)
            assert count_mask_resolutions["calls"] == round_number
