"""Ensemble-scale certification: stacked passes vs independent runs.

The acceptance bar of the ensemble certification engine: certifying a whole
``(B, n, d)`` ensemble — through ``ValencyEstimator.certify_ensemble``, the
``valency_contraction_trace_ensemble`` helper, or ``Study(certify=...)`` —
must be **bit-for-bit identical** to ``B`` independent single-scenario
certifications, for stateless (convex-combination) and stateful
(batch-state) algorithms alike, on the batched and reference paths.  Also
covered: the per-scenario configuration snapshots of ``EnsembleExecution``,
the ``batch_state_stack`` hook, and the state-level fixpoint hook
(``Algorithm.batch_state_fixpoint``) that extends active-set retiring to
stateful algorithms.
"""

import numpy as np
import pytest

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    MeanAlgorithm,
    MidpointAlgorithm,
)
from repro.api import CertifySpec, Study
from repro.core.adversary import GreedyDiameterAdversary, PsiBlockAdversary
from repro.core.contraction import (
    valency_contraction_trace,
    valency_contraction_trace_ensemble,
)
from repro.core.valency import ValencyEstimator
from repro.exceptions import ExecutionError
from repro.execution import run_ensemble, run_execution, run_pattern_ensemble
from repro.graphs.families import complete_graph, cycle_graph, directed_star_graph
from repro.models.patterns import PeriodicPattern, SequencePattern
from repro.models.standard import deaf_model, psi_model


def _values(batch_size, n, d=1, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=(batch_size, n, d))


def _pattern(n):
    return PeriodicPattern([complete_graph(n), cycle_graph(n), directed_star_graph(n)])


class TestScenarioSnapshots:
    def test_batched_snapshots_match_single_scenario_runs(self):
        algorithm = MidpointAlgorithm()
        n, batch_size, rounds = 5, 3, 6
        values = _values(batch_size, n)
        ensemble = run_pattern_ensemble(
            algorithm, values, _pattern(n), rounds, record_every=2, record_states=True
        )
        assert ensemble.batched is True
        assert ensemble.has_recorded_states
        for scenario in range(batch_size):
            solo = run_execution(
                algorithm, values[scenario], _pattern(n), rounds, record_every=2
            )
            configs = ensemble.scenario_configurations(scenario)
            assert [c.round_number for c in configs] == [
                c.round_number for c in solo.configurations
            ]
            for config_ens, config_solo in zip(configs, solo.configurations):
                assert np.array_equal(config_ens.outputs, config_solo.outputs)
                for state_ens, state_solo in zip(config_ens.states, config_solo.states):
                    assert np.array_equal(
                        np.asarray(state_ens), np.asarray(state_solo)
                    )

    def test_stateful_snapshots_roundtrip_through_batch_state(self):
        algorithm = AmortizedMidpointAlgorithm()
        n, batch_size, rounds = 5, 2, 7  # rounds not a phase multiple: mid-phase snapshot
        values = _values(batch_size, n, seed=3)
        ensemble = run_pattern_ensemble(
            algorithm, values, _pattern(n), rounds, record_states=True
        )
        for scenario in range(batch_size):
            solo = run_execution(algorithm, values[scenario], _pattern(n), rounds)
            for config_ens, config_solo in zip(
                ensemble.scenario_configurations(scenario), solo.configurations
            ):
                for state_ens, state_solo in zip(config_ens.states, config_solo.states):
                    assert np.array_equal(state_ens.value, state_solo.value)
                    assert np.array_equal(state_ens.phase_min, state_solo.phase_min)
                    assert np.array_equal(state_ens.phase_max, state_solo.phase_max)
                    assert state_ens.rounds_into_phase == state_solo.rounds_into_phase

    def test_snapshots_off_by_default_and_error_is_actionable(self):
        ensemble = run_pattern_ensemble(
            MidpointAlgorithm(), _values(2, 4), _pattern(4), 3
        )
        assert not ensemble.has_recorded_states
        with pytest.raises(ExecutionError, match="record_states=True"):
            ensemble.scenario_configurations(0)

    def test_slow_path_records_snapshots_too(self):
        algorithm = MidpointAlgorithm()
        values = _values(2, 4, seed=5)
        batched = run_pattern_ensemble(
            algorithm, values, _pattern(4), 4, record_states=True, use_batch=True
        )
        loop = run_pattern_ensemble(
            algorithm, values, _pattern(4), 4, record_states=True, use_batch=False
        )
        assert loop.batched is False
        for scenario in range(2):
            for config_a, config_b in zip(
                batched.scenario_configurations(scenario),
                loop.scenario_configurations(scenario),
            ):
                assert np.array_equal(config_a.outputs, config_b.outputs)


class TestBatchStateStack:
    def test_array_states_stack(self):
        algorithm = MidpointAlgorithm()
        states = [np.full((3, 1), float(i)) for i in range(4)]
        stacked = algorithm.batch_state_stack(states)
        assert stacked.shape == (4, 3, 1)
        assert np.array_equal(stacked[2], states[2])

    def test_structured_states_stack_leafwise(self):
        algorithm = AmortizedMidpointAlgorithm()
        values = _values(3, 4, seed=7)
        singles = [algorithm.batch_initial(values[b]) for b in range(3)]
        stacked = algorithm.batch_state_stack(singles)
        assert stacked.value.shape == (3, 4, 1)
        assert np.array_equal(stacked.phase_min[1], singles[1].phase_min)
        assert stacked.rounds_into_phase == 0

    def test_structured_states_must_be_in_lockstep(self):
        algorithm = AmortizedMidpointAlgorithm()
        values = _values(2, 4, seed=8)
        graph = complete_graph(4)
        one = algorithm.batch_initial(values[0])
        other = algorithm.batch_transition(
            algorithm.batch_initial(values[1]), graph.adjacency, 1
        )
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError, match="lockstep"):
            algorithm.batch_state_stack([one, other])

    def test_stack_rejects_empty(self):
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError):
            MidpointAlgorithm().batch_state_stack([])


class TestCertifyEnsemble:
    @pytest.mark.parametrize("use_batch", [True, False])
    def test_stateless_matches_independent_traces(self, use_batch):
        algorithm = MidpointAlgorithm()
        n, batch_size, rounds = 5, 4, 6
        model = deaf_model(n=n)
        values = _values(batch_size, n, seed=11)
        ensemble = run_pattern_ensemble(
            algorithm, values, _pattern(n), rounds, record_every=2, record_states=True
        )
        estimator = ValencyEstimator(
            algorithm, model, suffix_rounds=15, exploration_depth=1, use_batch=use_batch
        )
        per_scenario = estimator.certify_ensemble(ensemble)
        assert len(per_scenario) == batch_size
        for scenario in range(batch_size):
            solo = estimator.trace(ensemble.scenario_configurations(scenario))
            assert len(per_scenario[scenario]) == len(solo)
            for estimate_ens, estimate_solo in zip(per_scenario[scenario], solo):
                assert np.array_equal(estimate_ens.limits, estimate_solo.limits)
                assert estimate_ens.lower_diameter == estimate_solo.lower_diameter
                assert estimate_ens.upper_diameter == estimate_solo.upper_diameter

    @pytest.mark.parametrize("use_batch", [True, False])
    def test_stateful_matches_independent_traces(self, use_batch):
        algorithm = AmortizedMidpointAlgorithm()
        n, batch_size, rounds = 5, 3, 7
        model = psi_model(n)
        values = _values(batch_size, n, seed=13)
        ensemble = run_pattern_ensemble(
            algorithm, values, _pattern(n), rounds, record_states=True
        )
        estimator = ValencyEstimator(
            algorithm, model, suffix_rounds=12, use_batch=use_batch
        )
        per_scenario = estimator.certify_ensemble(ensemble)
        for scenario in range(batch_size):
            solo = estimator.trace(ensemble.scenario_configurations(scenario))
            for estimate_ens, estimate_solo in zip(per_scenario[scenario], solo):
                assert np.array_equal(estimate_ens.limits, estimate_solo.limits)
                assert estimate_ens.lower_diameter == estimate_solo.lower_diameter

    def test_non_round_invariant_mean_groups_by_round(self):
        # MeanAlgorithm is round-invariant; force the same-round grouping path
        # through a wrapper that hides round invariance.
        class RoundShyMean(MeanAlgorithm):
            def round_invariant(self):
                return False

        algorithm = RoundShyMean()
        n, batch_size = 4, 3
        model = deaf_model(n=n)
        values = _values(batch_size, n, seed=17)
        ensemble = run_pattern_ensemble(
            algorithm, values, _pattern(n), 4, record_states=True
        )
        estimator = ValencyEstimator(algorithm, model, suffix_rounds=10)
        per_scenario = estimator.certify_ensemble(ensemble)
        for scenario in range(batch_size):
            solo = estimator.trace(ensemble.scenario_configurations(scenario))
            for estimate_ens, estimate_solo in zip(per_scenario[scenario], solo):
                assert np.array_equal(estimate_ens.limits, estimate_solo.limits)

    def test_requires_recorded_states(self):
        ensemble = run_pattern_ensemble(MidpointAlgorithm(), _values(2, 4), _pattern(4), 3)
        estimator = ValencyEstimator(MidpointAlgorithm(), deaf_model(n=4), suffix_rounds=5)
        with pytest.raises(ExecutionError, match="record_states=True"):
            estimator.certify_ensemble(ensemble)

    def test_rejects_non_ensemble_inputs(self):
        estimator = ValencyEstimator(MidpointAlgorithm(), deaf_model(n=4), suffix_rounds=5)
        with pytest.raises(ExecutionError, match="EnsembleExecution"):
            estimator.certify_ensemble(object())


class TestTraceEnsemble:
    def test_trace_rows_match_single_scenario_traces(self):
        algorithm = MidpointAlgorithm()
        n, batch_size, rounds = 4, 3, 5
        model = deaf_model(n=n)
        values = _values(batch_size, n, seed=19)
        traces = valency_contraction_trace_ensemble(
            algorithm, model, _pattern(n), values, rounds, suffix_rounds=12
        )
        assert traces.shape == (batch_size, rounds + 1)
        for scenario in range(batch_size):
            solo = valency_contraction_trace(
                algorithm,
                model,
                SequencePattern(
                    [_pattern(n).graph_at(t) for t in range(1, rounds + 1)]
                ),
                values[scenario],
                rounds,
                suffix_rounds=12,
            )
            assert traces[scenario].tolist() == solo

    def test_per_scenario_patterns(self):
        algorithm = MidpointAlgorithm()
        n, batch_size = 4, 2
        model = deaf_model(n=n)
        patterns = [
            PeriodicPattern([complete_graph(n), cycle_graph(n)]),
            PeriodicPattern([directed_star_graph(n)]),
        ]
        traces = valency_contraction_trace_ensemble(
            algorithm, model, patterns, _values(batch_size, n, seed=23), 4,
            suffix_rounds=10,
        )
        assert traces.shape == (batch_size, 5)


class TestStudyEnsembleCertification:
    @pytest.mark.parametrize(
        "algorithm_factory,adversary_factory,model_factory,n",
        [
            (
                MidpointAlgorithm,
                lambda model, n: GreedyDiameterAdversary(model),
                lambda n: deaf_model(n=n),
                5,
            ),
            (
                AmortizedMidpointAlgorithm,
                lambda model, n: PsiBlockAdversary(n),
                psi_model,
                5,
            ),
        ],
    )
    def test_adversarial_ensemble_certificates_match_independent_studies(
        self, algorithm_factory, adversary_factory, model_factory, n
    ):
        model = model_factory(n)
        batch_size, rounds = 3, 8
        values = _values(batch_size, n, seed=29)
        certify = CertifySpec(suffix_rounds=10)
        result = Study(
            algorithm=algorithm_factory(),
            initial_values=values,
            adversary=adversary_factory(model, n),
            rounds=rounds,
            model=model,
            certify=certify,
        ).run()
        assert isinstance(result.certificates, list)
        assert len(result.certificates) == batch_size
        for scenario in range(batch_size):
            solo = Study(
                algorithm=algorithm_factory(),
                initial_values=values[scenario],
                adversary=adversary_factory(model, n),
                rounds=rounds,
                model=model,
                certify=certify,
            ).run()
            ensemble_cert = result.certificates[scenario]
            assert ensemble_cert.valency_trace == solo.certificates.valency_trace
            assert ensemble_cert.output_rate == solo.certificates.output_rate
            assert ensemble_cert.rate_interval == solo.certificates.rate_interval
            for estimate_ens, estimate_solo in zip(
                ensemble_cert.estimates, solo.certificates.estimates
            ):
                assert np.array_equal(estimate_ens.limits, estimate_solo.limits)

    def test_pattern_and_graph_routes_certify(self):
        n = 4
        model = deaf_model(n=n)
        values = _values(2, n, seed=31)
        by_pattern = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=values,
            pattern=_pattern(n),
            rounds=4,
            model=model,
            certify=CertifySpec(suffix_rounds=8),
        ).run()
        graphs = [_pattern(n).graph_at(t) for t in range(1, 5)]
        by_graphs = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=values,
            graphs=graphs,
            model=model,
            certify=CertifySpec(suffix_rounds=8),
        ).run()
        assert by_pattern.provenance.route == "run_pattern_ensemble"
        assert by_graphs.provenance.route == "run_ensemble"
        assert [c.valency_trace for c in by_pattern.certificates] == [
            c.valency_trace for c in by_graphs.certificates
        ]

    def test_uncertified_ensembles_skip_snapshots(self):
        result = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=_values(2, 4, seed=37),
            pattern=_pattern(4),
            rounds=3,
        ).run()
        assert result.certificates is None
        assert not result.execution.has_recorded_states


class TestStateFixpointHook:
    def test_convex_hook_matches_output_fixpoints(self):
        algorithm = MidpointAlgorithm()
        previous = np.array([[[0.5], [0.5]], [[0.1], [0.9]]])
        new = np.array([[[0.5], [0.5]], [[0.5], [0.5]]])
        fixed = algorithm.batch_state_fixpoint(previous, new)
        assert fixed.tolist() == [True, False]

    def test_round_dependent_rules_answer_none(self):
        class RoundShyMean(MeanAlgorithm):
            def round_invariant(self):
                return False

        assert RoundShyMean().batch_state_fixpoint(np.zeros((1, 2, 1)), np.zeros((1, 2, 1))) is None

    def test_amortized_hook_detects_collapsed_states(self):
        algorithm = AmortizedMidpointAlgorithm()
        # All agents agree: the state is an exact fixpoint of every graph.
        agreed = algorithm.batch_initial(np.full((2, 4, 1), 0.25))
        graph = complete_graph(4)
        stepped = algorithm.batch_transition(agreed, graph.adjacency, 1)
        fixed = algorithm.batch_state_fixpoint(agreed, stepped)
        assert fixed.tolist() == [True, True]
        # Disagreeing agents under a connecting graph are not fixpoints.
        mixed = algorithm.batch_initial(
            np.stack([np.full((4, 1), 0.25), np.linspace(0, 1, 4).reshape(4, 1)])
        )
        stepped = algorithm.batch_transition(mixed, graph.adjacency, 1)
        fixed = algorithm.batch_state_fixpoint(mixed, stepped)
        assert fixed.tolist() == [True, False]

    def test_amortized_hook_claims_nothing_on_reset_rounds(self):
        algorithm = AmortizedMidpointAlgorithm(phase_length=1)
        agreed = algorithm.batch_initial(np.full((1, 3, 1), 0.5))
        stepped = algorithm.batch_transition(agreed, complete_graph(3).adjacency, 1)
        assert stepped.rounds_into_phase == 0
        assert algorithm.batch_state_fixpoint(agreed, stepped).tolist() == [False]

    def test_stateful_retiring_is_bit_for_bit(self):
        # Scenarios that collapse to agreement retire from the constant
        # suffix early; the estimate must equal the full reference loop.
        algorithm = AmortizedMidpointAlgorithm()
        n = 4
        model = psi_model(n)
        # One agreed scenario (retires immediately), one generic scenario.
        values = np.stack(
            [np.full((n, 1), 0.5), np.linspace(0.0, 1.0, n).reshape(n, 1)]
        )
        ensemble = run_ensemble(
            algorithm,
            values,
            [complete_graph(n)] * 3,
            record_states=True,
        )
        batched = ValencyEstimator(algorithm, model, suffix_rounds=25, use_batch=True)
        reference = ValencyEstimator(algorithm, model, suffix_rounds=25, use_batch=False)
        per_batched = batched.certify_ensemble(ensemble)
        per_reference = reference.certify_ensemble(ensemble)
        for scenario in range(2):
            for estimate_b, estimate_r in zip(
                per_batched[scenario], per_reference[scenario]
            ):
                assert np.array_equal(estimate_b.limits, estimate_r.limits)
                assert estimate_b.lower_diameter == estimate_r.lower_diameter
