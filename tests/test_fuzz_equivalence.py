"""Differential scenario fuzzing: generated cases, not hand-enumerated ones.

Four engines and three toggle dimensions (``use_fast_path`` / ``use_batch`` /
``use_packed``-style reduction impls) all promise bit-for-bit (or, for the
summation-order-sensitive averaging rules, last-ulp) equivalence.  Rather
than enumerating cases by hand, a seeded generator draws random scenarios —
graphs, graph sequences, adversary patterns, and algorithm/knob combinations
from a registry — and differentially checks

* **fast vs reference** (``run_execution`` with ``use_fast_path`` on/off),
* **batch vs loop** (``run_ensemble`` / ``run_pattern_ensemble`` with
  ``use_batch`` on/off, plus per-scenario state snapshots),
* **adversarial batch vs loop** (``run_adversarial_ensemble`` vs per-scenario
  adversary runs, choices and outputs),
* **packed vs dense** masked reductions,
* **facade vs direct** (``Study`` vs the engine call it compiles to),
* **faulted batch vs loop** (the vectorized fault-mask path vs the
  per-scenario reference loop under randomized ``FaultPlan``s, including
  both paths raising :class:`~repro.exceptions.FaultModelError` together),
  and
* **zero-fault vs none** (``FaultPlan()`` / ``FaultSpec()`` must be
  bit-for-bit invisible on the batch, facade and event-simulator routes),
* **parallel vs serial** (``threads`` — keyword or ``EngineConfig`` scope —
  shards the B axis without changing a single byte, faulted runs included),
* **fused vs separate reductions** (``masked_extreme_pair`` /
  ``masked_min_max`` against independent ``masked_min`` + ``masked_max``
  calls under every reduction implementation),

each over ``CASES_PER_PAIR`` (200+) generated cases under one fixed master
seed.  Everything is deterministic — cases derive from
``np.random.default_rng((MASTER_SEED, case_seed))`` and nothing reads clocks
or global RNG state — so a failure message's repro snippet replays the exact
failing case:

    from tests.test_fuzz_equivalence import run_case
    run_case("fast_vs_reference", 123)
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.algorithms.base import (
    masked_extreme_pair,
    masked_max,
    masked_min,
    masked_min_max,
    masked_reduction_impl,
)
from repro.api import Study
from repro.asynchrony import AsynchronousSimulator, RoundBasedAsyncAlgorithm
from repro.campaign.registry import ORDERED_ENTRIES, random_strongly_connected_graph
from repro.config import EngineConfig
from repro.campaign.repro import repro_snippet as _repro_snippet
from repro.core.adversary import GreedyDiameterAdversary
from repro.exceptions import FaultModelError
from repro.execution import (
    run_adversarial_ensemble,
    run_ensemble,
    run_execution,
    run_pattern_ensemble,
)
from repro.faults import CrashSpec, FaultMaskingPattern, FaultPlan, FaultSpec, JoinSpec
from repro.graphs.generators import random_graph
from repro.models.network_model import NetworkModel
from repro.models.patterns import PeriodicPattern, SequencePattern

MASTER_SEED = 20260728
CASES_PER_PAIR = 200

#: The generator draws algorithms from the shared fuzz registry
#: (:mod:`repro.campaign.registry`), the same one the counterexample
#: campaign and the registry audit consume: registering an algorithm there
#: is sufficient for this suite to fuzz it.  ``entry.exact`` marks the
#: order-independent min/max family whose two execution paths agree
#: bit-for-bit; the averaging family sums received values in different
#: orders on the two paths and is compared to the last ulp instead
#: (mirroring tests/test_equivalence.py).
ALGORITHMS = ORDERED_ENTRIES


def _case_rng(case_seed):
    return np.random.default_rng((MASTER_SEED, case_seed))


def build_scenario(case_seed):
    """Deterministically generate one random scenario from its seed.

    Returns a dict with an algorithm drawn from the fuzz registry, stacked
    ``(B, n, d)`` initial values, a random per-round graph schedule (mixing
    shared and per-scenario rounds; one fixed strongly connected graph for
    graph-pinned entries), and the raw rng for further draws.
    """
    rng = _case_rng(case_seed)
    entry = ALGORITHMS[int(rng.integers(len(ALGORITHMS)))]
    n = entry.fixed_n if entry.fixed_n is not None else int(rng.integers(3, 9))
    d = int(rng.integers(1, 3))
    batch_size = int(rng.integers(1, 5))
    rounds = int(rng.integers(1, 8))
    edge_probability = float(rng.uniform(0.15, 0.95))
    graph_rounds = []
    fixed_graph = None
    if entry.needs_fixed_graph:
        fixed_graph = random_strongly_connected_graph(n, rng, edge_probability)
        graph_rounds = [fixed_graph] * rounds
    algorithm = entry.build(entry.draw_params(rng), n, fixed_graph)
    values = rng.uniform(-2.0, 2.0, size=(batch_size, n, d))
    if not entry.needs_fixed_graph:
        for _ in range(rounds):
            if rng.random() < 0.5:
                graph_rounds.append(random_graph(n, rng, edge_probability))
            else:
                graph_rounds.append(
                    [random_graph(n, rng, edge_probability) for _ in range(batch_size)]
                )
    record_every = int(rng.integers(1, 4))
    return {
        "key": entry.key,
        "exact": entry.exact,
        "entry": entry,
        "algorithm": algorithm,
        "n": n,
        "d": d,
        "batch_size": batch_size,
        "rounds": rounds,
        "values": values,
        "graph_rounds": graph_rounds,
        "record_every": record_every,
        "rng": rng,
    }


def _assert_outputs_match(pair, case_seed, label, got, want, exact):
    got = np.asarray(got, dtype=float)
    want = np.asarray(want, dtype=float)
    if exact:
        ok = np.array_equal(got, want)
    else:
        ok = got.shape == want.shape and np.allclose(got, want, rtol=0.0, atol=1e-12)
    assert ok, (
        f"{label}: outputs differ (max abs diff "
        f"{np.abs(got - want).max() if got.shape == want.shape else 'shape mismatch'})"
        + _repro_snippet(pair, case_seed)
    )


def _scenario_graphs(case, scenario):
    return [
        graphs if not isinstance(graphs, list) else graphs[scenario]
        for graphs in case["graph_rounds"]
    ]


# --------------------------------------------------------------------------- #
# Per-pair case runners (also the repro entry points)
# --------------------------------------------------------------------------- #


def _case_fast_vs_reference(case_seed):
    case = build_scenario(case_seed)
    if not case["algorithm"].supports_batch():
        return  # forcing use_fast_path=True would (correctly) raise
    pattern = SequencePattern(_scenario_graphs(case, 0)) if case["rounds"] else None
    if pattern is None:
        return
    fast = run_execution(
        case["algorithm"], case["values"][0], pattern, case["rounds"],
        record_every=case["record_every"], use_fast_path=True,
    )
    reference = run_execution(
        case["algorithm"], case["values"][0], pattern, case["rounds"],
        record_every=case["record_every"], use_fast_path=False,
    )
    assert [c.round_number for c in fast.configurations] == [
        c.round_number for c in reference.configurations
    ], "recorded rounds differ" + _repro_snippet("fast_vs_reference", case_seed)
    for config_fast, config_ref in zip(fast.configurations, reference.configurations):
        _assert_outputs_match(
            "fast_vs_reference",
            case_seed,
            f"{case['key']} round {config_fast.round_number}",
            config_fast.outputs,
            config_ref.outputs,
            case["exact"],
        )
    _assert_outputs_match(
        "fast_vs_reference", case_seed, f"{case['key']} diameters",
        fast.diameters(), reference.diameters(), case["exact"],
    )


def _case_batch_vs_loop(case_seed):
    case = build_scenario(case_seed)
    batched = run_ensemble(
        case["algorithm"], case["values"], case["graph_rounds"],
        record_every=case["record_every"], use_batch=True, record_states=True,
    ) if case["algorithm"].supports_batch() else None
    loop = run_ensemble(
        case["algorithm"], case["values"], case["graph_rounds"],
        record_every=case["record_every"], use_batch=False, record_states=True,
    )
    if batched is None:
        return
    assert batched.recorded_rounds == loop.recorded_rounds, (
        "recorded rounds differ" + _repro_snippet("batch_vs_loop", case_seed)
    )
    # The ensemble path and the per-scenario loop are bit-for-bit identical
    # for every algorithm: both run the vectorized transition per scenario.
    _assert_outputs_match(
        "batch_vs_loop", case_seed, f"{case['key']} recorded outputs",
        batched.recorded_outputs, loop.recorded_outputs, True,
    )
    _assert_outputs_match(
        "batch_vs_loop", case_seed, f"{case['key']} diameters",
        batched.diameters(), loop.diameters(), True,
    )
    # Per-scenario snapshots must agree with single-scenario fast-path runs.
    scenario = int(case["rng"].integers(case["batch_size"]))
    solo = run_execution(
        case["algorithm"], case["values"][scenario],
        SequencePattern(_scenario_graphs(case, scenario)) if case["rounds"] else None,
        case["rounds"], record_every=case["record_every"],
    ) if case["rounds"] else None
    if solo is not None:
        for config_batch, config_solo in zip(
            batched.scenario_configurations(scenario), solo.configurations
        ):
            _assert_outputs_match(
                "batch_vs_loop", case_seed,
                f"{case['key']} scenario {scenario} snapshot round "
                f"{config_batch.round_number}",
                config_batch.outputs, config_solo.outputs, True,
            )


def _case_adversarial_batch_vs_loop(case_seed):
    case = build_scenario(case_seed)
    if not case["algorithm"].supports_batch():
        return  # forcing use_batch=True would (correctly) raise
    rng = case["rng"]
    n = case["n"]
    model_size = int(rng.integers(2, 5))
    edge_probability = float(rng.uniform(0.3, 0.9))
    model = NetworkModel(
        [random_graph(n, rng, edge_probability) for _ in range(model_size)]
    )
    rounds = int(rng.integers(1, 6))
    avoid_repeat = bool(rng.random() < 0.3)
    batched = run_adversarial_ensemble(
        case["algorithm"], case["values"],
        GreedyDiameterAdversary(model, avoid_repeat=avoid_repeat),
        rounds, use_batch=True, record_states=True,
    )
    loop = run_adversarial_ensemble(
        case["algorithm"], case["values"],
        GreedyDiameterAdversary(model, avoid_repeat=avoid_repeat),
        rounds, use_batch=False, record_states=True,
    )
    _assert_outputs_match(
        "adversarial_batch_vs_loop", case_seed, f"{case['key']} recorded outputs",
        batched.recorded_outputs, loop.recorded_outputs, True,
    )
    for scenario in range(case["batch_size"]):
        assert batched.scenario_graphs(scenario) == loop.scenario_graphs(scenario), (
            f"{case['key']} scenario {scenario}: committed graph choices differ"
            + _repro_snippet("adversarial_batch_vs_loop", case_seed)
        )


def _case_packed_vs_dense(case_seed):
    rng = _case_rng(case_seed)
    n = int(rng.integers(2, 48))
    d = int(rng.integers(1, 4))
    lead = int(rng.integers(1, 7))
    values = rng.uniform(-3.0, 3.0, size=(lead, n, d))
    if rng.random() < 0.3:
        # Shared registered graph adjacency broadcast over the value ensemble
        # (exercises the bitset-resident CommunicationGraph cache).
        adjacency = random_graph(n, rng, float(rng.uniform(0.1, 0.9))).adjacency
    else:
        adjacency = rng.random((lead, n, n)) < rng.uniform(0.1, 0.9)
        adjacency = adjacency.copy()
        for i in range(n):
            adjacency[..., i, i] = bool(rng.random() < 0.9)
    with masked_reduction_impl("dense"):
        lo_dense, hi_dense = masked_min_max(adjacency, values)
    with masked_reduction_impl("packed"):
        lo_packed, hi_packed = masked_min_max(adjacency, values)
    for label, got, want in (
        ("masked min", lo_packed, lo_dense),
        ("masked max", hi_packed, hi_dense),
    ):
        assert np.array_equal(got, want), (
            f"{label} differs between packed and dense reductions "
            f"(n={n}, d={d}, lead={lead})" + _repro_snippet("packed_vs_dense", case_seed)
        )


def _case_facade_vs_direct(case_seed):
    case = build_scenario(case_seed)
    rng = case["rng"]
    pattern = PeriodicPattern(_scenario_graphs(case, 0)) if case["rounds"] else None
    if pattern is None:
        return
    if rng.random() < 0.5:
        # Single-scenario route.
        direct = run_execution(
            case["algorithm"], case["values"][0], pattern, case["rounds"],
            record_every=case["record_every"],
        )
        facade = Study(
            algorithm=case["algorithm"], initial_values=case["values"][0],
            pattern=pattern, rounds=case["rounds"], record_every=case["record_every"],
        ).run()
        assert facade.provenance.route == "run_execution"
        direct_outputs = np.stack([c.outputs for c in direct.configurations])
        facade_outputs = np.stack([c.outputs for c in facade.execution.configurations])
    else:
        direct = run_pattern_ensemble(
            case["algorithm"], case["values"], pattern, case["rounds"],
            record_every=case["record_every"],
        )
        facade = Study(
            algorithm=case["algorithm"], initial_values=case["values"],
            pattern=pattern, rounds=case["rounds"], record_every=case["record_every"],
        ).run()
        assert facade.provenance.route == "run_pattern_ensemble"
        direct_outputs = direct.recorded_outputs
        facade_outputs = facade.execution.recorded_outputs
    _assert_outputs_match(
        "facade_vs_direct", case_seed, f"{case['key']} outputs",
        facade_outputs, direct_outputs, True,
    )
    _assert_outputs_match(
        "facade_vs_direct", case_seed, f"{case['key']} final diameters",
        np.asarray(facade.final_diameters()), np.asarray(
            direct.final_diameter() if hasattr(direct, "final_diameter")
            else direct.final_diameters()
        ), True,
    )


def _random_fault_plan(rng, n, rounds):
    """Draw a deterministic random :class:`FaultPlan` from the case rng.

    ``enforce_model=False`` by default — random drops legitimately leave
    ``N_A`` and the output-equivalence half of the pair wants runs that
    complete; the invariant half flips enforcement back on.
    """
    drop = float(rng.uniform(0.05, 0.35)) if rng.random() < 0.7 else 0.0
    crashes, joins = [], []
    agents = [int(a) for a in rng.permutation(n)]
    for agent in agents[: int(rng.integers(0, min(2, n - 1) + 1))]:
        if rng.random() < 0.6:
            crash_round = int(rng.integers(1, rounds + 1))
            recipients = None
            if rng.random() < 0.4:
                recipients = frozenset(
                    int(a) for a in rng.permutation(n)[: int(rng.integers(0, n))]
                )
            recovery = None
            if rng.random() < 0.3:
                recovery = crash_round + int(rng.integers(1, 4))
            crashes.append(
                CrashSpec(
                    agent,
                    crash_round,
                    final_recipients=recipients,
                    recovery_round=recovery,
                )
            )
        else:
            joins.append(JoinSpec(agent, int(rng.integers(1, rounds + 2))))
    return FaultPlan(
        drop=drop,
        crashes=tuple(crashes),
        joins=tuple(joins),
        seed=int(rng.integers(0, 2**31)),
        enforce_model=False,
    )


def _case_faulted_batch_vs_loop(case_seed):
    case = build_scenario(case_seed)
    if not case["algorithm"].supports_batch():
        return  # forcing use_batch=True would (correctly) raise
    rng = case["rng"]
    plan = _random_fault_plan(rng, case["n"], case["rounds"])
    if plan.is_zero():
        plan = replace(plan, drop=0.2)
    if rng.random() < 0.35:
        # The invariant half: both paths must trip (or not trip) together.
        plan = replace(plan, enforce_model=True)

    def run(toggle):
        try:
            return (
                run_ensemble(
                    case["algorithm"], case["values"], case["graph_rounds"],
                    record_every=case["record_every"], use_batch=toggle,
                    record_states=True, fault_plan=plan,
                ),
                None,
            )
        except FaultModelError as error:
            return None, error

    batched, batch_error = run(True)
    loop, loop_error = run(False)
    assert (batch_error is None) == (loop_error is None), (
        f"{case['key']}: FaultModelError on one path only "
        f"(batch={batch_error!r}, loop={loop_error!r})"
        + _repro_snippet("faulted_batch_vs_loop", case_seed)
    )
    if batch_error is not None:
        # With a single scenario there is no processing-order ambiguity: the
        # two paths must blame the identical (scenario, round, agent).
        if case["batch_size"] == 1:
            assert (
                batch_error.scenario, batch_error.round_number, batch_error.agent
            ) == (loop_error.scenario, loop_error.round_number, loop_error.agent), (
                f"{case['key']}: FaultModelError attributes differ"
                + _repro_snippet("faulted_batch_vs_loop", case_seed)
            )
        return
    assert batched.recorded_rounds == loop.recorded_rounds, (
        "recorded rounds differ" + _repro_snippet("faulted_batch_vs_loop", case_seed)
    )
    _assert_outputs_match(
        "faulted_batch_vs_loop", case_seed, f"{case['key']} recorded outputs",
        batched.recorded_outputs, loop.recorded_outputs, True,
    )
    _assert_outputs_match(
        "faulted_batch_vs_loop", case_seed, f"{case['key']} diameters",
        batched.diameters(), loop.diameters(), True,
    )
    # A per-scenario snapshot must match a single-scenario run whose pattern
    # is masked by the same plan at the same scenario index.
    if case["rounds"]:
        scenario = int(rng.integers(case["batch_size"]))
        solo = run_execution(
            case["algorithm"], case["values"][scenario],
            FaultMaskingPattern(
                SequencePattern(_scenario_graphs(case, scenario)), plan, scenario=scenario
            ),
            case["rounds"], record_every=case["record_every"],
        )
        for config_batch, config_solo in zip(
            batched.scenario_configurations(scenario), solo.configurations
        ):
            _assert_outputs_match(
                "faulted_batch_vs_loop", case_seed,
                f"{case['key']} scenario {scenario} snapshot round "
                f"{config_batch.round_number}",
                config_batch.outputs, config_solo.outputs, True,
            )


def _case_zero_fault_vs_none(case_seed):
    case = build_scenario(case_seed)
    rng = case["rng"]
    zero = FaultPlan() if rng.random() < 0.5 else FaultSpec()

    # Batch engine, both toggles: the zero plan must be bit-for-bit invisible.
    for toggle in (True, False):
        if toggle and not case["algorithm"].supports_batch():
            continue
        bare = run_ensemble(
            case["algorithm"], case["values"], case["graph_rounds"],
            record_every=case["record_every"], use_batch=toggle,
        )
        zeroed = run_ensemble(
            case["algorithm"], case["values"], case["graph_rounds"],
            record_every=case["record_every"], use_batch=toggle, fault_plan=zero,
        )
        _assert_outputs_match(
            "zero_fault_vs_none", case_seed,
            f"{case['key']} use_batch={toggle} recorded outputs",
            zeroed.recorded_outputs, bare.recorded_outputs, True,
        )

    # Facade route (ensemble graphs).
    bare_study = Study(
        algorithm=case["algorithm"], initial_values=case["values"],
        graphs=case["graph_rounds"], record_every=case["record_every"],
    ).run()
    zero_study = Study(
        algorithm=case["algorithm"], initial_values=case["values"],
        graphs=case["graph_rounds"], record_every=case["record_every"], faults=zero,
    ).run()
    assert not zero_study.provenance.faulted, (
        "a zero plan must not mark the study as faulted"
        + _repro_snippet("zero_fault_vs_none", case_seed)
    )
    _assert_outputs_match(
        "zero_fault_vs_none", case_seed, f"{case['key']} facade outputs",
        zero_study.execution.recorded_outputs, bare_study.execution.recorded_outputs,
        True,
    )

    # Event-driven simulator route (skipped for entries the round-based
    # complete-graph route cannot represent, e.g. graph-pinned algorithms).
    if not case["entry"].supports_simulator:
        return
    wrapped = RoundBasedAsyncAlgorithm(case["algorithm"])
    runs = []
    for fault_plan in (None, zero):
        execution = AsynchronousSimulator(
            wrapped, case["values"][0], f=0, fault_plan=fault_plan, max_time=4.0,
        ).run()
        runs.append(execution)
    bare_sim, zero_sim = runs
    assert len(bare_sim.samples) == len(zero_sim.samples), (
        f"{case['key']}: simulator sample counts differ"
        + _repro_snippet("zero_fault_vs_none", case_seed)
    )
    for sample_bare, sample_zero in zip(bare_sim.samples, zero_sim.samples):
        assert (
            sample_zero.time == sample_bare.time
            and sample_zero.agent == sample_bare.agent
            and np.array_equal(sample_zero.value, sample_bare.value)
        ), (
            f"{case['key']}: simulator samples diverge under the zero plan"
            + _repro_snippet("zero_fault_vs_none", case_seed)
        )
    _assert_outputs_match(
        "zero_fault_vs_none", case_seed, f"{case['key']} simulator final outputs",
        zero_sim.final_outputs, bare_sim.final_outputs, True,
    )


def _case_parallel_vs_serial(case_seed):
    """B-axis sharding must be bit-for-bit invisible on every ensemble route."""
    case = build_scenario(case_seed)
    rng = case["rng"]
    threads = int(rng.integers(2, 8))
    use_batch = None if rng.random() < 0.7 else False
    plan = None
    draw_plan = rng.random() < 0.4  # consumed unconditionally: keeps draws aligned
    if draw_plan and case["rounds"] and not case["entry"].needs_fixed_graph:
        # Graph-pinned algorithms reject dropped edges by design; everything
        # else must shard identically under randomized fault plans too.
        plan = _random_fault_plan(rng, case["n"], case["rounds"])
    via_config = bool(rng.random() < 0.5)

    def run(thread_count, via):
        kwargs = dict(
            record_every=case["record_every"], use_batch=use_batch,
            record_states=True, fault_plan=plan,
        )
        if via:
            with EngineConfig(threads=thread_count):
                return run_ensemble(
                    case["algorithm"], case["values"], case["graph_rounds"], **kwargs
                )
        return run_ensemble(
            case["algorithm"], case["values"], case["graph_rounds"],
            threads=thread_count, **kwargs,
        )

    serial = run(1, False)
    sharded = run(threads, via_config)
    assert sharded.recorded_rounds == serial.recorded_rounds, (
        "recorded rounds differ" + _repro_snippet("parallel_vs_serial", case_seed)
    )
    # Sharding + merging must commute with every round update bit-for-bit —
    # exact for the averaging family too, since both runs use the same
    # per-scenario summation order.
    _assert_outputs_match(
        "parallel_vs_serial", case_seed,
        f"{case['key']} threads={threads} recorded outputs",
        sharded.recorded_outputs, serial.recorded_outputs, True,
    )
    _assert_outputs_match(
        "parallel_vs_serial", case_seed, f"{case['key']} diameters",
        sharded.diameters(), serial.diameters(), True,
    )
    if case["batch_size"] > 1:
        scenario = int(rng.integers(case["batch_size"]))
        for config_sharded, config_serial in zip(
            sharded.scenario_configurations(scenario),
            serial.scenario_configurations(scenario),
        ):
            _assert_outputs_match(
                "parallel_vs_serial", case_seed,
                f"{case['key']} scenario {scenario} snapshot round "
                f"{config_sharded.round_number}",
                config_sharded.outputs, config_serial.outputs, True,
            )


def _case_fused_vs_separate_reduction(case_seed):
    """One fused mask resolution must equal two independent reductions."""
    rng = _case_rng(case_seed)
    n = int(rng.integers(2, 48))
    d = int(rng.integers(1, 4))
    lead = int(rng.integers(1, 7))
    min_values = rng.uniform(-3.0, 3.0, size=(lead, n, d))
    shared = bool(rng.random() < 0.4)
    max_values = min_values if shared else rng.uniform(-3.0, 3.0, size=(lead, n, d))
    if rng.random() < 0.3:
        adjacency = random_graph(n, rng, float(rng.uniform(0.1, 0.9))).adjacency
    else:
        adjacency = (rng.random((lead, n, n)) < rng.uniform(0.1, 0.9)).copy()
        for i in range(n):
            adjacency[..., i, i] = bool(rng.random() < 0.9)
    impl = ("auto", "dense", "packed")[int(rng.integers(3))]
    with masked_reduction_impl(impl):
        fused_min, fused_max = masked_extreme_pair(adjacency, min_values, max_values)
        separate_min = masked_min(adjacency, min_values)
        separate_max = masked_max(adjacency, max_values)
        if shared:
            pair_min, pair_max = masked_min_max(adjacency, min_values)
        else:
            pair_min, pair_max = fused_min, fused_max
    for label, got, want in (
        ("fused min", fused_min, separate_min),
        ("fused max", fused_max, separate_max),
        ("min_max min", pair_min, separate_min),
        ("min_max max", pair_max, separate_max),
    ):
        assert np.array_equal(got, want), (
            f"{label} differs between the fused and separate reductions "
            f"(impl={impl}, shared={shared}, n={n}, d={d}, lead={lead})"
            + _repro_snippet("fused_vs_separate_reduction", case_seed)
        )


_PAIRS = {
    "fast_vs_reference": _case_fast_vs_reference,
    "batch_vs_loop": _case_batch_vs_loop,
    "adversarial_batch_vs_loop": _case_adversarial_batch_vs_loop,
    "packed_vs_dense": _case_packed_vs_dense,
    "facade_vs_direct": _case_facade_vs_direct,
    "faulted_batch_vs_loop": _case_faulted_batch_vs_loop,
    "zero_fault_vs_none": _case_zero_fault_vs_none,
    "parallel_vs_serial": _case_parallel_vs_serial,
    "fused_vs_separate_reduction": _case_fused_vs_separate_reduction,
}


def run_case(pair, case_seed):
    """Replay one generated case of one toggle pair (the repro entry point)."""
    _PAIRS[pair](case_seed)


@pytest.mark.parametrize("pair", sorted(_PAIRS))
def test_fuzz_pair(pair):
    for case_seed in range(CASES_PER_PAIR):
        run_case(pair, case_seed)


def test_generator_is_deterministic():
    first = build_scenario(7)
    second = build_scenario(7)
    assert first["key"] == second["key"]
    assert np.array_equal(first["values"], second["values"])
    assert [
        g.adjacency.tobytes() if not isinstance(g, list) else
        tuple(h.adjacency.tobytes() for h in g)
        for g in first["graph_rounds"]
    ] == [
        g.adjacency.tobytes() if not isinstance(g, list) else
        tuple(h.adjacency.tobytes() for h in g)
        for g in second["graph_rounds"]
    ]


def test_repro_snippet_names_pair_and_seed():
    snippet = _repro_snippet("batch_vs_loop", 42)
    assert "run_case('batch_vs_loop', 42)" in snippet
    assert "tests.test_fuzz_equivalence" in snippet
