"""Tests for the Table-1 closed-form bounds and the model classifier."""

import math

import pytest

from repro.core.lower_bounds import (
    alpha_diameter_lower_bound,
    amortized_midpoint_upper_bound,
    contraction_rate_lower_bound,
    deaf_graphs_lower_bound,
    general_async_contraction_rate,
    midpoint_upper_bound,
    psi_lower_bound,
    round_based_crash_lower_bound,
    round_based_crash_upper_bound,
    two_agent_lower_bound,
    two_agent_upper_bound,
)
from repro.exceptions import ModelError
from repro.models.standard import deaf_model, psi_model, two_agent_model


class TestClosedForms:
    def test_two_agent_bounds_match(self):
        assert two_agent_lower_bound() == pytest.approx(1.0 / 3.0)
        assert two_agent_upper_bound() == two_agent_lower_bound()

    def test_deaf_bound_is_one_half(self):
        assert deaf_graphs_lower_bound() == 0.5
        assert midpoint_upper_bound() == 0.5

    @pytest.mark.parametrize("n", [4, 5, 8, 16])
    def test_psi_bound_closed_form(self, n):
        assert psi_lower_bound(n) == pytest.approx(0.5 ** (1.0 / (n - 2)))

    def test_psi_bound_requires_four_agents(self):
        with pytest.raises(ModelError):
            psi_lower_bound(3)

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_amortized_upper_bound_closed_form(self, n):
        assert amortized_midpoint_upper_bound(n) == pytest.approx(0.5 ** (1.0 / (n - 1)))

    def test_psi_lower_bound_is_below_amortized_upper_bound(self):
        # Table 1 leaves an asymptotically vanishing gap between Theorem 3's
        # (1/2)^(1/(n-2)) and the amortized midpoint's (1/2)^(1/(n-1)).
        for n in (4, 6, 10):
            assert psi_lower_bound(n) <= amortized_midpoint_upper_bound(n)

    def test_alpha_diameter_bound(self):
        assert alpha_diameter_lower_bound(1.0) == pytest.approx(0.5)
        assert alpha_diameter_lower_bound(3.0) == pytest.approx(0.25)
        assert alpha_diameter_lower_bound(float("inf")) == 0.0
        with pytest.raises(ModelError):
            alpha_diameter_lower_bound(0.5)

    @pytest.mark.parametrize("n,f", [(3, 1), (7, 3), (10, 4)])
    def test_round_based_crash_bounds(self, n, f):
        assert round_based_crash_lower_bound(n, f) == pytest.approx(
            1.0 / (math.ceil(n / f) + 1)
        )
        assert round_based_crash_upper_bound(n, f) == pytest.approx(
            1.0 / (math.ceil(n / f) - 1)
        )
        assert round_based_crash_lower_bound(n, f) < round_based_crash_upper_bound(n, f)

    def test_crash_bounds_require_minority_faults(self):
        with pytest.raises(ModelError):
            round_based_crash_lower_bound(4, 2)

    def test_general_async_rate_is_zero(self):
        assert general_async_contraction_rate() == 0.0


class TestClassifier:
    def test_two_agent_model_classifies_to_theorem_1(self):
        bound = contraction_rate_lower_bound(two_agent_model())
        assert bound.theorem == "Theorem 1"
        assert bound.value == pytest.approx(1.0 / 3.0)

    def test_deaf_model_classifies_to_theorem_2(self):
        bound = contraction_rate_lower_bound(deaf_model(n=4), check_alpha_diameter=False)
        assert bound.theorem == "Theorem 2"
        assert bound.value == 0.5

    def test_psi_model_classifies_to_theorem_3(self):
        n = 5
        bound = contraction_rate_lower_bound(psi_model(n), check_alpha_diameter=False)
        assert bound.theorem == "Theorem 3"
        assert bound.value == pytest.approx(psi_lower_bound(n))
