"""Round-trip tests for the service serialization layer.

Property-style: every spec, plan, config and result codec is driven over a
seeded grid of randomized instances, each pushed through an actual
``json.dumps``/``json.loads`` cycle (not just ``to_dict``/``from_dict``) so
the payloads are proven JSON-transportable.  Arrays must come back
bit-for-bit; the structured exceptions must survive pickling with their
diagnostic fields intact (the orchestrator ships worker errors across
process boundaries).
"""

import json
import pickle

import numpy as np
import pytest

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    FloodingExactConsensus,
    HegselmannKrauseAlgorithm,
    MassSplittingAlgorithm,
    MidpointAlgorithm,
    SelfWeightedAveraging,
    TwoAgentThirdsAlgorithm,
)
from repro.algorithms.approximate import DecidingAlgorithm
from repro.api import CertifySpec, ScenarioSpec, Study, StudyResult
from repro.config import EngineConfig
from repro.exceptions import (
    AsynchronyError,
    EnsembleShapeError,
    FaultModelError,
    SerializationError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.faults import CrashSpec, FaultPlan, FaultSpec, JoinSpec
from repro.models.patterns import (
    ConstantPattern,
    PeriodicPattern,
    RandomPattern,
    SequencePattern,
    SigmaBlockPattern,
)
from repro.models.standard import deaf_model, psi_model, two_agent_model
from repro.service.serialization import (
    canonical_json,
    decode_algorithm,
    decode_array,
    decode_graph,
    decode_model,
    decode_pattern,
    encode_algorithm,
    encode_array,
    encode_graph,
    encode_model,
    encode_pattern,
)


def roundtrip(payload):
    """Force an actual JSON wire cycle, not just a dict copy."""
    return json.loads(json.dumps(payload))


# --------------------------------------------------------------------- #
# Arrays and primitives
# --------------------------------------------------------------------- #


def test_array_roundtrip_bit_for_bit():
    rng = np.random.default_rng(7)
    arrays = [
        rng.uniform(-1, 1, (3, 4, 5)),
        rng.integers(-100, 100, (6,), dtype=np.int64),
        rng.uniform(0, 1, (2, 3)) < 0.5,
        np.array([np.nan, np.inf, -np.inf, -0.0]),
        np.array([], dtype=float),
        np.float64(0.1) * np.ones((1, 1, 1, 1)),
    ]
    for array in arrays:
        back = decode_array(roundtrip(encode_array(array)))
        assert back.dtype == array.dtype
        assert back.shape == array.shape
        assert np.array_equal(back, array, equal_nan=True)
        # bit-for-bit, not just value-equal
        assert back.tobytes() == array.tobytes()


def test_canonical_json_is_order_insensitive():
    a = canonical_json({"b": 1, "a": [1, 2], "c": {"y": 0, "x": 1}})
    b = canonical_json({"c": {"x": 1, "y": 0}, "a": [1, 2], "b": 1})
    assert a == b


# --------------------------------------------------------------------- #
# Graphs, models, patterns, algorithms
# --------------------------------------------------------------------- #


def test_graph_and_model_roundtrip():
    model = deaf_model(n=5)
    for graph in model:
        back = decode_graph(roundtrip(encode_graph(graph)))
        assert back.n == graph.n
        assert np.array_equal(back.adjacency, graph.adjacency)
    back_model = decode_model(roundtrip(encode_model(model)))
    assert back_model.name == model.name
    assert list(back_model) == list(model)


PATTERNS = [
    lambda model: ConstantPattern(list(model)[0]),
    lambda model: PeriodicPattern(list(model)[:3]),
    lambda model: SequencePattern(list(model)[:2]),
    lambda model: SequencePattern(list(model)[:2], ConstantPattern(list(model)[1])),
    lambda model: RandomPattern(list(model), seed=11),
    lambda model: SigmaBlockPattern(5, seed=3),
]


@pytest.mark.parametrize("factory", PATTERNS)
def test_pattern_roundtrip_emits_identical_graphs(factory):
    model = deaf_model(n=5)
    pattern = factory(model)
    back = decode_pattern(roundtrip(encode_pattern(pattern)))
    assert type(back) is type(pattern)
    for t in range(1, 13):
        assert back.graph_at(t) == pattern.graph_at(t)


ALGORITHMS = [
    MidpointAlgorithm(),
    TwoAgentThirdsAlgorithm(),
    AmortizedMidpointAlgorithm(),
    AmortizedMidpointAlgorithm(phase_length=4),
    HegselmannKrauseAlgorithm(confidence=0.4),
    SelfWeightedAveraging(self_weight=0.7),
    FloodingExactConsensus(horizon=6),
    DecidingAlgorithm(MidpointAlgorithm(), 3),
    DecidingAlgorithm(AmortizedMidpointAlgorithm(), 0),
]


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
def test_algorithm_roundtrip_behaves_identically(algorithm):
    back = decode_algorithm(roundtrip(encode_algorithm(algorithm)))
    assert type(back) is type(algorithm)
    assert back.name == algorithm.name
    if isinstance(algorithm, TwoAgentThirdsAlgorithm):
        model = two_agent_model()
        values = np.array([0.0, 1.0])
    else:
        model = deaf_model(n=5)
        values = np.linspace(0.0, 1.0, 5)
    pattern = RandomPattern(list(model), seed=5)
    from repro.execution import run_execution

    original = run_execution(algorithm, values, pattern, 6)
    decoded = run_execution(back, values, pattern, 6)
    assert np.array_equal(original.outputs(), decoded.outputs())


def test_mass_splitting_roundtrip():
    from repro.graphs import complete_graph

    algorithm = MassSplittingAlgorithm(complete_graph(4))
    back = decode_algorithm(roundtrip(encode_algorithm(algorithm)))
    assert back.graph == algorithm.graph


def test_unregistered_algorithm_is_rejected():
    class Custom(MidpointAlgorithm):
        pass

    with pytest.raises(SerializationError):
        encode_algorithm(Custom())


# --------------------------------------------------------------------- #
# Fault plans and specs
# --------------------------------------------------------------------- #


def fault_plan_grid():
    rng = np.random.default_rng(23)
    plans = []
    for _ in range(12):
        crash_agents = rng.choice(5, size=int(rng.integers(0, 3)), replace=False)
        crashes = tuple(
            CrashSpec(
                agent=int(agent),
                round=int(rng.integers(1, 8)),
                final_recipients=(
                    None
                    if rng.random() < 0.5
                    else frozenset(
                        int(a) for a in rng.choice(5, size=2, replace=False)
                    )
                ),
                recovery_round=(
                    None if rng.random() < 0.5 else int(rng.integers(8, 12))
                ),
            )
            for agent in crash_agents
        )
        join_agents = rng.choice(5, size=int(rng.integers(0, 2)), replace=False)
        joins = tuple(
            JoinSpec(agent=int(agent), round=int(rng.integers(1, 6)))
            for agent in join_agents
        )
        plans.append(
            FaultPlan(
                drop=float(rng.uniform(0, 0.4)),
                duplicate=float(rng.uniform(0, 0.2)),
                jitter=float(rng.uniform(0, 0.3)),
                crashes=crashes,
                joins=joins,
                f=None if rng.random() < 0.5 else int(rng.integers(1, 4)),
                seed=int(rng.integers(0, 1000)),
                enforce_model=bool(rng.integers(0, 2)),
                scenario_base=int(rng.integers(0, 16)),
            )
        )
    return plans


@pytest.mark.parametrize("plan", fault_plan_grid(), ids=range(12))
def test_fault_plan_roundtrip_samples_identically(plan):
    back = FaultPlan.from_dict(roundtrip(plan.to_dict()))
    assert back == plan
    # The decoded plan must draw the identical masks — the sharded service
    # depends on this to reproduce a shard's faults in a worker process.
    for round_number in (1, 3):
        assert np.array_equal(
            back.batch_round_masks(round_number, 4, 5),
            plan.batch_round_masks(round_number, 4, 5),
        )


def test_fault_spec_roundtrip_and_zero_normalization():
    spec = FaultSpec(drop=0.1, crashes=(CrashSpec(agent=1, round=2),), seed=5)
    back = FaultSpec.from_dict(roundtrip(spec.to_dict()))
    assert back.compile() == spec.compile()
    # A zero spec round-trips to a zero spec; Study normalizes it away.
    zero = FaultSpec()
    zero_back = FaultSpec.from_dict(roundtrip(zero.to_dict()))
    assert zero_back.compile().is_zero()
    study = Study(
        algorithm=MidpointAlgorithm(),
        initial_values=np.linspace(0, 1, 4),
        pattern=ConstantPattern(list(deaf_model(n=4))[0]),
        rounds=3,
        faults=zero_back,
    )
    assert study.run().provenance.faulted is False


def test_fault_plan_version_gate():
    payload = FaultPlan(drop=0.1, seed=1).to_dict()
    payload["version"] = 99
    with pytest.raises(SerializationError):
        FaultPlan.from_dict(payload)


# --------------------------------------------------------------------- #
# Configs and specs
# --------------------------------------------------------------------- #


def test_engine_config_roundtrip():
    configs = [
        EngineConfig(),
        EngineConfig(use_fast_path=True, seed=7),
        EngineConfig(
            use_batch=False,
            use_packed=False,
            reduction_impl="dense",
            reduction_batch_chunk=8,
            scenario_chunk=64,
        ),
    ]
    for config in configs:
        assert EngineConfig.from_dict(roundtrip(config.to_dict())) == config


def test_engine_config_bad_payloads():
    with pytest.raises(SerializationError):
        EngineConfig.from_dict({"__type__": "Nope", "version": 1})
    payload = EngineConfig().to_dict()
    payload["version"] = 2
    with pytest.raises(SerializationError):
        EngineConfig.from_dict(payload)


def scenario_spec_grid():
    model = deaf_model(n=5)
    graphs = list(model)
    rng = np.random.default_rng(3)
    single = rng.uniform(0, 1, (5,))
    matrix = rng.uniform(0, 1, (5, 2))
    ensemble = rng.uniform(0, 1, (4, 5, 1))
    return [
        ScenarioSpec(initial_values=single, rounds=6, pattern=ConstantPattern(graphs[0])),
        ScenarioSpec(initial_values=matrix, rounds=4, pattern=RandomPattern(graphs, seed=2)),
        ScenarioSpec(initial_values=single, graphs=graphs[:3]),
        ScenarioSpec(
            initial_values=ensemble,
            rounds=5,
            pattern=[ConstantPattern(graphs[i % len(graphs)]) for i in range(4)],
            scenario_labels=["a", "b", "c", "d"],
            record_every=2,
        ),
        ScenarioSpec(
            initial_values=ensemble,
            graphs=[graphs[0], [graphs[i % len(graphs)] for i in range(4)], graphs[1]],
        ),
    ]


@pytest.mark.parametrize("spec", scenario_spec_grid(), ids=range(5))
def test_scenario_spec_roundtrip(spec):
    back = ScenarioSpec.from_dict(roundtrip(spec.to_dict()))
    assert back.rounds == spec.rounds
    assert back.record_every == spec.record_every
    assert back.scenario_labels == spec.scenario_labels
    assert back.is_ensemble() == spec.is_ensemble()
    assert np.array_equal(
        np.asarray(back.initial_values, dtype=float),
        np.asarray(spec.initial_values, dtype=float),
    )
    # The decoded spec must drive a Study to the identical trajectory.
    direct = Study(algorithm=MidpointAlgorithm(), scenario=spec).run()
    decoded = Study(algorithm=MidpointAlgorithm(), scenario=back).run()
    assert np.array_equal(direct.final_outputs, decoded.final_outputs)


def test_adversarial_spec_is_rejected():
    from repro.core.adversary import TwoAgentAdversary

    spec = ScenarioSpec(
        initial_values=[0.0, 1.0], rounds=4, adversary=TwoAgentAdversary()
    )
    with pytest.raises(SerializationError):
        spec.to_dict()


def test_certify_spec_roundtrip_nested_in_study_payload():
    certify = CertifySpec(suffix_rounds=20, exploration_depth=1, use_batch=False)
    back = CertifySpec.from_dict(roundtrip(certify.to_dict()))
    assert back == certify
    # Nested inside a certified study result the spec's effect (the
    # estimates) round-trips bit-for-bit.
    model = two_agent_model()
    result = Study(
        algorithm=TwoAgentThirdsAlgorithm(),
        initial_values=[0.0, 1.0],
        pattern=ConstantPattern(list(model)[0]),
        rounds=6,
        model=model,
        certify=CertifySpec(suffix_rounds=10),
    ).run()
    decoded = StudyResult.from_dict(roundtrip(result.to_dict()))
    assert decoded.certificates.rate_interval == result.certificates.rate_interval
    assert decoded.certificates.valency_trace == result.certificates.valency_trace
    for mine, theirs in zip(decoded.certificates.estimates, result.certificates.estimates):
        assert np.array_equal(mine.limits, theirs.limits)


def test_study_result_roundtrip_certified_faulted_ensemble():
    model = deaf_model(n=5)
    values = np.random.default_rng(0).uniform(0, 1, (4, 5, 1))
    result = Study(
        algorithm=MidpointAlgorithm(),
        initial_values=values,
        rounds=6,
        pattern=RandomPattern(list(model), seed=3),
        model=model,
        certify=CertifySpec(suffix_rounds=10),
        faults=FaultSpec(drop=0.15, seed=9, enforce_model=False),
    ).run()
    back = StudyResult.from_dict(roundtrip(result.to_dict()))
    assert np.array_equal(
        back.execution.recorded_outputs, result.execution.recorded_outputs
    )
    assert back.execution.recorded_outputs.tobytes() == (
        result.execution.recorded_outputs.tobytes()
    )
    assert back.provenance == result.provenance
    assert back.execution.fault_plan == result.execution.fault_plan
    assert len(back.certificates) == len(result.certificates)
    for mine, theirs in zip(back.certificates, result.certificates):
        assert mine.rate_interval == theirs.rate_interval
    # recorded per-scenario configurations survive (states included)
    assert back.execution.has_recorded_states
    from repro.execution.state import _states_equal

    for r in range(len(result.execution.recorded_rounds)):
        for b in range(result.execution.batch_size):
            mine = back.execution.recorded_configurations[r][b]
            theirs = result.execution.recorded_configurations[r][b]
            assert mine.round_number == theirs.round_number
            assert np.array_equal(mine.outputs, theirs.outputs)
            assert _states_equal(mine.states, theirs.states)


# --------------------------------------------------------------------- #
# Exception pickling
# --------------------------------------------------------------------- #


def test_fault_model_error_pickles_with_fields():
    error = FaultModelError(
        "boom", scenario=3, round_number=2, agent=1, in_degree=1, required=4
    )
    back = pickle.loads(pickle.dumps(error))
    assert isinstance(back, FaultModelError)
    assert str(back) == "boom"
    assert (back.scenario, back.round_number, back.agent) == (3, 2, 1)
    assert (back.in_degree, back.required) == (1, 4)


def test_ensemble_shape_error_pickles_with_fields():
    error = EnsembleShapeError("bad shape", expected="(B, n, d)", actual=(3, 2))
    back = pickle.loads(pickle.dumps(error))
    assert isinstance(back, EnsembleShapeError)
    assert str(back) == "bad shape"
    assert back.expected == "(B, n, d)"
    assert back.actual == (3, 2)


def test_asynchrony_error_pickles_with_fields():
    error = AsynchronyError("starved", agent=2, round_number=5, time=1.25)
    back = pickle.loads(pickle.dumps(error))
    assert isinstance(back, AsynchronyError)
    assert (back.agent, back.round_number, back.time) == (2, 5, 1.25)


def test_service_errors_pickle_with_fields():
    crash = pickle.loads(pickle.dumps(WorkerCrashError("died", exitcode=-9)))
    assert crash.exitcode == -9
    timeout = pickle.loads(
        pickle.dumps(ShardTimeoutError("slow", elapsed=2.5, kind="heartbeat"))
    )
    assert timeout.elapsed == 2.5
    assert timeout.kind == "heartbeat"


def test_raised_exceptions_pickle_from_real_raise_sites():
    # EnsembleShapeError from the ensemble stacker
    with pytest.raises(EnsembleShapeError) as info:
        Study(
            algorithm=MidpointAlgorithm(),
            initial_values=np.zeros((2, 2, 2, 2)),
            rounds=2,
            pattern=ConstantPattern(list(deaf_model(n=4))[0]),
        ).run()
    back = pickle.loads(pickle.dumps(info.value))
    assert back.actual == (2, 2, 2, 2)
    # FaultModelError from the crash-model check
    with pytest.raises(FaultModelError) as info:
        Study(
            algorithm=MidpointAlgorithm(),
            initial_values=np.random.default_rng(0).uniform(0, 1, (2, 5, 1)),
            rounds=4,
            pattern=ConstantPattern(list(deaf_model(n=5))[0]),
            faults=FaultSpec(drop=0.95, seed=3),
        ).run()
    back = pickle.loads(pickle.dumps(info.value))
    assert back.scenario is not None
    assert back.round_number is not None
    assert back.required is not None


# --------------------------------------------------------------------- #
# Remote service wire records
# --------------------------------------------------------------------- #


def remote_record_grid():
    from repro.service.remote.protocol import (
        CacheHitRecord,
        JobRecord,
        LeaseRecord,
        TelemetryRecord,
    )

    return [
        JobRecord(key="a" * 64, kind="study_shard", body={"kind": "study_shard"}),
        JobRecord(key="b" * 64, kind="sweep_row", body={"row": {"n": 4}}),
        LeaseRecord(
            key="a" * 64,
            lease_id="deadbeef",
            worker="w0",
            attempt=2,
            heartbeat_interval=0.2,
            expires_in=30.0,
        ),
        TelemetryRecord(seq=1, event="enqueued", key="a" * 64),
        TelemetryRecord(
            seq=7,
            event="retried",
            key="b" * 64,
            kind="study_shard",
            worker="w1",
            attempt=1,
            elapsed=1.25,
            error_type="ShardTimeoutError",
            message="lease expired",
            timestamp=123.5,
        ),
        CacheHitRecord(key="c" * 64, kind="study_shard", source="journal"),
    ]


def test_remote_records_roundtrip():
    for record in remote_record_grid():
        assert type(record).from_dict(roundtrip(record.to_dict())) == record


def test_remote_records_reject_unknown_type():
    for record in remote_record_grid():
        payload = record.to_dict()
        payload["__type__"] = "Nope"
        with pytest.raises(SerializationError):
            type(record).from_dict(payload)


def test_remote_records_reject_newer_version():
    from repro.exceptions import UnsupportedVersionError

    for record in remote_record_grid():
        payload = record.to_dict()
        payload["version"] = 99
        with pytest.raises(UnsupportedVersionError) as info:
            type(record).from_dict(payload)
        # The structured error names the record type and both versions.
        assert info.value.record_type == record.to_dict()["__type__"]
        assert info.value.version == 99
        assert info.value.supported == 1
        assert isinstance(info.value, SerializationError)
        back = pickle.loads(pickle.dumps(info.value))
        assert back.record_type == info.value.record_type
        assert back.version == 99
        assert back.supported == 1


def test_checkpoint_journal_rejects_newer_record_version(tmp_path):
    from repro.exceptions import UnsupportedVersionError
    from repro.service.checkpoint import CheckpointJournal

    path = tmp_path / "journal.jsonl"
    with CheckpointJournal(path) as journal:
        journal.put("k1", {"x": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"key": "k2", "kind": "shard", "version": 2, "result": {"x": 2}}
            )
            + "\n"
        )
    with pytest.raises(UnsupportedVersionError) as info:
        CheckpointJournal(path)
    assert info.value.record_type == "shard"
    assert info.value.version == 2
    assert info.value.supported == 1


def test_checkpoint_journal_rejects_newer_header_version(tmp_path):
    from repro.exceptions import UnsupportedVersionError
    from repro.service.checkpoint import CheckpointJournal

    path = tmp_path / "journal.jsonl"
    path.write_text(json.dumps({"journal": "repro-service-journal", "version": 9}) + "\n")
    with pytest.raises(UnsupportedVersionError) as info:
        CheckpointJournal(path)
    assert info.value.record_type == "repro-service-journal"
    assert info.value.version == 9
