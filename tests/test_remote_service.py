"""Tests for the remote worker service: queue server, workers, cache.

The acceptance bar matches the local service layer: the remote route's
merged result must be **bit-for-bit identical** to the single-process
:class:`repro.api.Study` run — including when a worker is SIGKILLed
mid-shard (its lease expires and the shard is re-leased to a survivor),
when the coordinator itself is SIGKILLed and restarted from its journal,
and when a second study is served entirely from the shared result cache
without re-executing a shard.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.algorithms import MidpointAlgorithm
from repro.api import Study
from repro.exceptions import ConfigError, RemoteServiceError
from repro.models.patterns import RandomPattern
from repro.models.standard import deaf_model
from repro.service import RetryPolicy, run_study_service
from repro.service.checkpoint import content_key
from repro.service.remote import (
    JobQueueServer,
    JobRecord,
    RemoteConfig,
    ResultCache,
)
from repro.service.remote.protocol import as_remote_config, http_json
from repro.service.remote.worker import run_worker
from repro.service.status import tail


@pytest.fixture()
def ensemble_kwargs():
    model = deaf_model(n=5)
    pattern = RandomPattern(list(model), seed=3)
    values = np.random.default_rng(0).uniform(0, 1, (8, 5, 1))
    return dict(
        algorithm=MidpointAlgorithm(),
        initial_values=values,
        rounds=8,
        pattern=pattern,
    )


def _start_workers(url, count=2, stop=None, **kwargs):
    stop = stop if stop is not None else threading.Event()
    threads = []
    for index in range(count):
        thread = threading.Thread(
            target=run_worker,
            args=(url,),
            kwargs=dict(
                worker_id=f"w{index}", poll_interval=0.05, stop_event=stop, **kwargs
            ),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    return stop, threads


def _remote(url, **overrides):
    return RemoteConfig(
        url=url, poll_interval=0.5, job_timeout=overrides.pop("job_timeout", 120.0)
    )


def assert_same_result(merged, direct):
    assert np.array_equal(
        merged.execution.recorded_outputs, direct.execution.recorded_outputs
    )
    assert merged.provenance == direct.provenance
    assert merged.execution.fault_plan == direct.execution.fault_plan


# --------------------------------------------------------------------- #
# Bit-for-bit and telemetry basics
# --------------------------------------------------------------------- #


def test_remote_route_matches_direct_study(ensemble_kwargs):
    direct = Study(**ensemble_kwargs).run()
    with JobQueueServer(lease_timeout=30.0) as server:
        stop, _ = _start_workers(server.url, count=2)
        try:
            records = []
            merged = run_study_service(
                **ensemble_kwargs,
                shard_size=2,
                remote=_remote(server.url),
                on_shard=records.append,
            )
        finally:
            stop.set()
        assert_same_result(merged, direct)
        assert sorted(record.shard for record in records) == [0, 1, 2, 3]
        assert all(record.source == "worker" for record in records)
        events = [record.event for record in server.telemetry.since(0)]
        assert events.count("enqueued") == 4
        assert events.count("leased") == 4
        assert events.count("completed") == 4


def test_second_study_served_from_cache(ensemble_kwargs, tmp_path):
    direct = Study(**ensemble_kwargs).run()
    cache_journal = tmp_path / "cache.jsonl"
    with JobQueueServer(cache=cache_journal, lease_timeout=30.0) as server:
        stop, _ = _start_workers(server.url, count=2)
        try:
            first = run_study_service(
                **ensemble_kwargs, shard_size=2, remote=_remote(server.url)
            )
        finally:
            stop.set()
        assert_same_result(first, direct)

    # A *restarted* server over the same cache journal, with NO workers at
    # all: the second study must be served entirely from the cache.
    with JobQueueServer(cache=cache_journal, lease_timeout=30.0) as server:
        records = []
        second = run_study_service(
            **ensemble_kwargs,
            shard_size=2,
            remote=_remote(server.url, job_timeout=30.0),
            on_shard=records.append,
        )
        assert_same_result(second, direct)
        assert all(record.source == "cache" for record in records)
        assert all(record.attempts == 0 for record in records)
        events = [record.event for record in server.telemetry.since(0)]
        assert events.count("cache-hit") == 4
        assert "leased" not in events


def test_remote_accepts_bare_url_string(ensemble_kwargs):
    direct = Study(**ensemble_kwargs).run()
    with JobQueueServer() as server:
        stop, _ = _start_workers(server.url, count=1)
        try:
            merged = run_study_service(
                **ensemble_kwargs, shard_size=4, remote=server.url
            )
        finally:
            stop.set()
    assert_same_result(merged, direct)
    with pytest.raises(ConfigError):
        as_remote_config(42)


# --------------------------------------------------------------------- #
# Failure semantics: expired leases, killed workers, bad jobs
# --------------------------------------------------------------------- #


def test_expired_lease_is_re_leased_to_surviving_worker(ensemble_kwargs):
    direct = Study(**ensemble_kwargs).run()
    with JobQueueServer(lease_timeout=1.0) as server:
        merged_box = {}

        def _coordinate():
            merged_box["result"] = run_study_service(
                **ensemble_kwargs, shard_size=2, remote=_remote(server.url)
            )

        coordinator = threading.Thread(target=_coordinate, daemon=True)
        coordinator.start()
        # A zombie worker leases one job and never heartbeats.
        deadline = time.monotonic() + 10.0
        answer = {"lease": None}
        while answer.get("lease") is None:
            assert time.monotonic() < deadline, "no job became leasable"
            answer = http_json(f"{server.url}/lease", {"worker": "zombie"})
            time.sleep(0.05)
        zombie_key = answer["lease"]["key"]
        # Only now do live workers join; the zombie's lease must expire and
        # its shard be re-leased to one of them.
        stop, _ = _start_workers(server.url, count=2)
        try:
            coordinator.join(timeout=60.0)
        finally:
            stop.set()
        assert not coordinator.is_alive()
        assert_same_result(merged_box["result"], direct)
        events = server.telemetry.since(0)
        retried = [record for record in events if record.event == "retried"]
        assert any(
            record.key == zombie_key
            and record.error_type == "ShardTimeoutError"
            and record.worker == "zombie"
            for record in retried
        ), [record.to_dict() for record in events]
        completed = {
            record.key: record for record in events if record.event == "completed"
        }
        assert completed[zombie_key].attempt >= 2
        assert completed[zombie_key].worker != "zombie"


def test_sigkilled_worker_process_does_not_lose_the_study(ensemble_kwargs, tmp_path):
    direct = Study(**ensemble_kwargs).run()
    marker = tmp_path / "kill-me"
    marker.write_text("armed")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with JobQueueServer(lease_timeout=1.0) as server:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.worker",
                "--url",
                server.url,
                "--worker-id",
                "suicidal",
                "--poll",
                "0.05",
                "--kill-marker",
                str(marker),
            ],
            env=env,
        )
        merged_box = {}

        def _coordinate():
            merged_box["result"] = run_study_service(
                **ensemble_kwargs, shard_size=2, remote=_remote(server.url)
            )

        coordinator = threading.Thread(target=_coordinate, daemon=True)
        coordinator.start()
        # The subprocess SIGKILLs itself on its first lease (consuming the
        # marker); only then do surviving workers join.
        proc.wait(timeout=60.0)
        assert proc.returncode == -signal.SIGKILL
        assert not marker.exists()
        stop, _ = _start_workers(server.url, count=2)
        try:
            coordinator.join(timeout=60.0)
        finally:
            stop.set()
        assert not coordinator.is_alive()
        assert_same_result(merged_box["result"], direct)
        events = server.telemetry.since(0)
        assert any(
            record.event == "retried" and record.worker == "suicidal"
            for record in events
        ), [record.to_dict() for record in events]


def test_unknown_job_kind_fails_fast_without_retry():
    body = {"kind": "nonsense", "payload": 1}
    record = JobRecord(key=content_key(body), kind="nonsense", body=body)
    with JobQueueServer(retry=RetryPolicy(max_attempts=3)) as server:
        answer = http_json(f"{server.url}/enqueue", record.to_dict())
        assert answer["status"] == "enqueued"
        run_worker(server.url, worker_id="w0", stop_when_idle=True)
        status = http_json(f"{server.url}/job?key={record.key}")
        # RemoteServiceError is a deterministic ReproError: one attempt only.
        assert status["status"] == "failed"
        assert status["attempts"] == 1
        error = http_json(f"{server.url}/error?key={record.key}")["error"]
        assert error["type"] == "RemoteServiceError"
        events = [event.event for event in server.telemetry.since(0)]
        assert "retried" not in events


def test_enqueue_rejects_mismatched_content_key():
    record = JobRecord(key="0" * 64, kind="study_shard", body={"kind": "x"})
    with JobQueueServer() as server:
        with pytest.raises(RemoteServiceError) as info:
            http_json(f"{server.url}/enqueue", record.to_dict())
        assert info.value.status == 400


# --------------------------------------------------------------------- #
# Coordinator crash/restart
# --------------------------------------------------------------------- #


def test_coordinator_sigkill_resumes_against_live_server(ensemble_kwargs, tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    with JobQueueServer(lease_timeout=30.0) as server:
        stop, _ = _start_workers(server.url, count=2)
        try:
            child_code = textwrap.dedent(
                f"""
                import numpy as np
                from repro.algorithms import MidpointAlgorithm
                from repro.models.standard import deaf_model
                from repro.models.patterns import RandomPattern
                from repro.service import RemoteConfig, run_study_service

                model = deaf_model(n=5)
                pattern = RandomPattern(list(model), seed=3)
                values = np.random.default_rng(0).uniform(0, 1, (8, 5, 1))
                def report(record):
                    print("SHARD", record.shard, flush=True)
                run_study_service(
                    algorithm=MidpointAlgorithm(), initial_values=values,
                    rounds=8, pattern=pattern, shard_size=2,
                    journal={journal_path!r},
                    remote=RemoteConfig(url={server.url!r}, poll_interval=0.5),
                    on_shard=report,
                )
                print("DONE", flush=True)
                """
            )
            env = dict(os.environ)
            src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.Popen(
                [sys.executable, "-c", child_code],
                env=env,
                stdout=subprocess.PIPE,
                text=True,
            )
            seen = 0
            for line in proc.stdout:
                if line.startswith("SHARD"):
                    seen += 1
                    if seen == 2:
                        os.kill(proc.pid, signal.SIGKILL)
                        break
            proc.wait()
            proc.stdout.close()
            assert proc.returncode == -signal.SIGKILL
            assert seen == 2

            direct = Study(**ensemble_kwargs).run()
            records = []
            merged = run_study_service(
                **ensemble_kwargs,
                shard_size=2,
                journal=journal_path,
                remote=_remote(server.url),
                on_shard=records.append,
            )
        finally:
            stop.set()
        assert_same_result(merged, direct)
        sources = {record.shard: record.source for record in records}
        # At least the two shards journaled before the SIGKILL replay
        # locally; the rest are served by the server (cache or worker).
        assert sum(1 for s in sources.values() if s == "journal") >= 2, sources
        assert set(sources.values()) <= {"journal", "cache", "worker"}


# --------------------------------------------------------------------- #
# Telemetry stream and status tail
# --------------------------------------------------------------------- #


def test_status_tail_replays_and_formats(ensemble_kwargs):
    with JobQueueServer() as server:
        stop, _ = _start_workers(server.url, count=2)
        try:
            run_study_service(**ensemble_kwargs, shard_size=2, remote=_remote(server.url))
        finally:
            stop.set()
        total = server.telemetry.last_seq
        lines = []
        written = tail(server.url, after=0, limit=total, write=lines.append)
        assert written == total == len(lines)
        assert all("job=" in line for line in lines)
        assert any("enqueued" in line for line in lines)
        assert any("completed" in line for line in lines)
        raw = []
        tail(server.url, after=total - 1, limit=1, raw=True, write=raw.append)
        assert len(raw) == 1 and '"remote-telemetry"' in raw[0]


def test_sse_stream_resumes_after_sequence(ensemble_kwargs):
    with JobQueueServer() as server:
        server.telemetry.append("enqueued", "k1")
        server.telemetry.append("leased", "k1", worker="w0", attempt=1)
        lines = []
        tail(server.url, after=1, limit=1, write=lines.append)
        assert len(lines) == 1
        assert "leased" in lines[0] and "worker=w0" in lines[0]


# --------------------------------------------------------------------- #
# Result cache unit behavior
# --------------------------------------------------------------------- #


def test_result_cache_layers_and_counters(tmp_path):
    journal = tmp_path / "cache.jsonl"
    with ResultCache(journal) as cache:
        assert cache.get("missing") is None
        assert cache.misses == 1
        cache.put("k1", {"x": 1})
        assert cache.lookup("k1") == ({"x": 1}, "memory")
        assert cache.get("k1") == {"x": 1}
        assert cache.hits == 1

    # A fresh cache over the same journal serves the entry durably, first
    # from the journal layer, then promoted to memory.
    with ResultCache(journal) as cache:
        assert cache.lookup("k1") == ({"x": 1}, "journal")
        assert cache.lookup("k1") == ({"x": 1}, "memory")
        assert "k1" in cache
        assert len(cache) == 1


def test_memory_only_cache_has_no_journal(tmp_path):
    cache = ResultCache()
    cache.put("k", {"v": 2})
    assert cache.lookup("k") == ({"v": 2}, "memory")
    assert len(cache) == 1
    cache.close()
