"""Unit tests for the synchronous round engine (both execution paths)."""

import numpy as np
import pytest

from repro.algorithms import (
    MeanAlgorithm,
    MidpointAlgorithm,
    TwoAgentThirdsAlgorithm,
)
from repro.core.adversary import GreedyDiameterAdversary, TwoAgentAdversary
from repro.exceptions import ExecutionError
from repro.execution import (
    apply_graph,
    initial_configuration,
    run_execution,
    successor_outputs,
)
from repro.execution.metrics import empirical_contraction_rate
from repro.graphs.families import complete_graph, cycle_graph, directed_star_graph
from repro.models.patterns import ConstantPattern, PeriodicPattern
from repro.models.standard import deaf_model


class TestApplyGraph:
    def test_midpoint_on_complete_graph_agrees_in_one_round(self):
        algo = MidpointAlgorithm()
        config = initial_configuration(algo, [0.0, 1.0, 4.0])
        successor = apply_graph(algo, config, complete_graph(3))
        np.testing.assert_array_equal(successor.outputs, np.full((3, 1), 2.0))
        assert successor.round_number == 1

    def test_mean_on_complete_graph(self):
        algo = MeanAlgorithm()
        config = initial_configuration(algo, [0.0, 3.0, 6.0])
        successor = apply_graph(algo, config, complete_graph(3))
        np.testing.assert_allclose(successor.outputs, np.full((3, 1), 3.0))

    def test_graph_size_mismatch_raises(self):
        algo = MidpointAlgorithm()
        config = initial_configuration(algo, [0.0, 1.0])
        with pytest.raises(ExecutionError):
            apply_graph(algo, config, complete_graph(3))

    def test_successor_outputs_does_not_mutate_configuration(self):
        algo = MidpointAlgorithm()
        config = initial_configuration(algo, [0.0, 1.0, 4.0])
        before = config.outputs.copy()
        successor_outputs(algo, config, complete_graph(3))
        np.testing.assert_array_equal(config.outputs, before)

    def test_forced_fast_apply_graph_rejects_non_convex_combination(self):
        # The amortized midpoint supports batching in run_execution, but
        # apply_graph cannot reconstruct its batch state from a
        # Configuration; use_fast_path=True must error, not silently fall
        # back to the per-agent path.
        from repro.algorithms import AmortizedMidpointAlgorithm

        algo = AmortizedMidpointAlgorithm()
        config = initial_configuration(algo, [0.0, 1.0, 2.0])
        with pytest.raises(ExecutionError):
            apply_graph(algo, config, complete_graph(3), use_fast_path=True)
        fallback = apply_graph(algo, config, complete_graph(3))
        assert fallback.round_number == 1

    def test_fast_and_slow_apply_graph_agree(self):
        algo = MidpointAlgorithm()
        config = initial_configuration(algo, [0.0, 1.0, 4.0, -2.0])
        graph = directed_star_graph(4, center=1)
        fast = apply_graph(algo, config, graph, use_fast_path=True)
        slow = apply_graph(algo, config, graph, use_fast_path=False)
        np.testing.assert_array_equal(fast.outputs, slow.outputs)


class TestRunExecution:
    def test_negative_rounds_raises(self):
        with pytest.raises(ExecutionError):
            run_execution(MidpointAlgorithm(), [0.0, 1.0], ConstantPattern(complete_graph(2)), -1)

    def test_zero_rounds_records_only_initial_configuration(self):
        execution = run_execution(
            MidpointAlgorithm(), [0.0, 1.0], ConstantPattern(complete_graph(2)), 0
        )
        assert execution.rounds == 0
        assert len(execution.configurations) == 1

    def test_record_every_keeps_final_configuration(self):
        execution = run_execution(
            MidpointAlgorithm(),
            [0.0, 1.0, 2.0],
            ConstantPattern(cycle_graph(3)),
            rounds=7,
            record_every=3,
        )
        assert [c.round_number for c in execution.configurations] == [0, 3, 6, 7]
        assert len(execution.graphs) == 7

    def test_use_fast_path_true_requires_batch_support(self):
        class NoBatch(MidpointAlgorithm):
            def supports_batch(self):
                return False

        with pytest.raises(ExecutionError):
            run_execution(
                NoBatch(), [0.0, 1.0], ConstantPattern(complete_graph(2)), 1, use_fast_path=True
            )

    def test_midpoint_halves_diameter_per_round_on_nonsplit_graphs(self):
        execution = run_execution(
            MidpointAlgorithm(), [0.0, 1.0], ConstantPattern(complete_graph(2)), 10
        )
        assert execution.final_diameter() == pytest.approx(0.0, abs=1e-12)
        assert execution.validity_holds()

    def test_validity_holds_on_both_paths(self):
        pattern = PeriodicPattern([complete_graph(4), cycle_graph(4)])
        for fast in (False, True):
            execution = run_execution(
                MeanAlgorithm(), [0.0, 1.0, 5.0, -3.0], pattern, 12, use_fast_path=fast
            )
            assert execution.validity_holds()


class TestAdaptivePatterns:
    def test_two_agent_adversary_realizes_one_third_on_fast_path(self):
        execution = run_execution(
            TwoAgentThirdsAlgorithm(), [0.0, 1.0], TwoAgentAdversary(), 25
        )
        rate = empirical_contraction_rate(execution)
        assert rate == pytest.approx(1.0 / 3.0, abs=1e-6)

    def test_greedy_deaf_adversary_halves_midpoint_per_round(self):
        execution = run_execution(
            MidpointAlgorithm(),
            [0.0, 1.0, 2.0, 3.0],
            GreedyDiameterAdversary(deaf_model(n=4)),
            15,
        )
        rate = empirical_contraction_rate(execution)
        assert rate == pytest.approx(0.5, abs=1e-9)

    def test_adaptive_pattern_sees_identical_context_on_both_paths(self):
        adversary_fast = GreedyDiameterAdversary(deaf_model(n=3))
        adversary_slow = GreedyDiameterAdversary(deaf_model(n=3))
        values = [0.0, 2.0, 5.0]
        fast = run_execution(MidpointAlgorithm(), values, adversary_fast, 8, use_fast_path=True)
        slow = run_execution(MidpointAlgorithm(), values, adversary_slow, 8, use_fast_path=False)
        assert fast.graphs == slow.graphs
        for a, b in zip(fast.configurations, slow.configurations):
            np.testing.assert_array_equal(a.outputs, b.outputs)
