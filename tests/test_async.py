"""Tests for the asynchronous simulator, schedulers and round-based wrapper.

Includes a brute-force reference implementation of ``agreement_time`` (the
old per-time rescan) to pin down the semantics of the new single-sweep
implementation.
"""

import numpy as np
import pytest

from repro.algorithms import MeanAlgorithm, MidpointAlgorithm
from repro.asynchrony import (
    AsynchronousSimulator,
    OutputSample,
    CrashFault,
    CrashSchedule,
    MinRelayAlgorithm,
    RandomDelayScheduler,
    RoundBasedAsyncAlgorithm,
    staggered_crash_schedule,
)
from repro.exceptions import AsynchronyError
from repro.types import diameter


def _reference_agreement_time(execution, tolerance):
    """The old O(S^2) rescan semantics, kept as the test oracle."""
    times = sorted({sample.time for sample in execution.samples} | {0.0, execution.final_time})
    agreement_since = None
    correct = execution.correct_agents()
    for t in times:
        outputs = execution.final_outputs.copy()
        latest = np.full(execution.n, -np.inf)
        for sample in execution.samples:
            if sample.time <= t and sample.time >= latest[sample.agent]:
                outputs[sample.agent] = sample.value
                latest[sample.agent] = sample.time
        if diameter(outputs[correct]) <= tolerance + 1e-12:
            if agreement_since is None:
                agreement_since = t
        else:
            agreement_since = None
    return agreement_since


def _run(algorithm, values, f, **kwargs):
    return AsynchronousSimulator(algorithm, values, f=f, **kwargs).run()


class TestSimulatorBasics:
    def test_crash_budget_is_validated(self):
        with pytest.raises(AsynchronyError):
            AsynchronousSimulator(MinRelayAlgorithm(), [0.0, 1.0], f=2)

    def test_quorum_must_be_positive(self):
        with pytest.raises(AsynchronyError):
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()).on_init(0, np.array([0.0]), 2, 2)

    def test_round_based_midpoint_without_crashes_behaves_like_lockstep(self):
        # All delays 1 and f = 0: every asynchronous round receives all n
        # messages, so the trajectory equals the synchronous midpoint run on
        # the complete graph — one round suffices for agreement.
        execution = _run(
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()), [0.0, 1.0, 4.0], f=0, max_time=10.0
        )
        assert execution.correct_diameter_at(execution.final_time) == pytest.approx(0.0)
        np.testing.assert_allclose(execution.final_outputs, np.full((3, 1), 2.0))

    def test_effective_in_neighbors_meet_the_quorum(self):
        n, f = 5, 2
        algorithm = RoundBasedAsyncAlgorithm(MidpointAlgorithm())
        state = algorithm.on_init(0, np.array([0.0]), n, f)
        state, _ = algorithm.on_start(0, state)
        assert algorithm.completed_rounds(state) == 0
        state, broadcasts = algorithm.on_receive(0, state, 1, (1, np.array([1.0])), 0.3)
        assert broadcasts == []
        state, broadcasts = algorithm.on_receive(0, state, 2, (1, np.array([2.0])), 0.4)
        # Quorum n - f = 3 reached: round 1 completes and round 2 is announced.
        assert algorithm.completed_rounds(state) == 1
        assert [b.round_hint for b in broadcasts] == [2]
        neighbors = algorithm.effective_in_neighbors(state)
        assert neighbors[1] == frozenset({0, 1, 2})
        for senders in neighbors.values():
            assert len(senders) >= n - f

    def test_stale_round_messages_are_ignored(self):
        n, f = 3, 1
        algorithm = RoundBasedAsyncAlgorithm(MidpointAlgorithm())
        state = algorithm.on_init(0, np.array([0.0]), n, f)
        state, _ = algorithm.on_start(0, state)
        # Quorum n - f = 2: one more round-1 message advances the round.
        state, _ = algorithm.on_receive(0, state, 1, (1, np.array([2.0])), 0.5)
        assert state.current_round == 2
        advanced = state
        # A late round-1 message must leave the state untouched.
        state, broadcasts = algorithm.on_receive(0, state, 2, (1, np.array([9.0])), 0.7)
        assert broadcasts == []
        assert state is advanced

    def test_own_round_message_is_not_double_buffered(self):
        algorithm = RoundBasedAsyncAlgorithm(MidpointAlgorithm())
        state = algorithm.on_init(0, np.array([0.0]), 3, 0)
        state, _ = algorithm.on_start(0, state)
        before = state
        state, broadcasts = algorithm.on_receive(0, state, 0, (1, np.array([0.0])), 1.0)
        assert state is before and broadcasts == []


class TestCrashSchedules:
    def test_staggered_crash_schedule_respects_budget(self):
        schedule = staggered_crash_schedule([0, 1], first_crash_time=1.0, spacing=1.0)
        schedule.validate(5, 2)
        with pytest.raises(AsynchronyError):
            schedule.validate(5, 1)

    def test_crashed_agent_takes_no_steps_after_crash(self):
        schedule = CrashSchedule([CrashFault(agent=2, time=0.5)])
        execution = _run(
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()), [0.0, 1.0, 4.0, 5.0], f=1,
            crash_schedule=schedule, max_time=12.0,
        )
        assert execution.crashed_agents == frozenset({2})
        assert 2 not in execution.correct_agents()
        final = execution.correct_diameter_at(execution.final_time)
        assert final == pytest.approx(0.0, abs=1e-9)


class TestTimelineQueries:
    @pytest.mark.parametrize("tolerance", [0.0, 1e-9, 0.5])
    def test_agreement_time_matches_reference_oracle(self, tolerance):
        execution = _run(
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()), [0.0, 1.0, 4.0, -1.0], f=1,
            delay_scheduler=RandomDelayScheduler(seed=7),
            max_time=8.0,
        )
        assert execution.agreement_time(tolerance) == _reference_agreement_time(
            execution, tolerance
        )

    def test_agreement_time_with_crashes_matches_reference_oracle(self):
        schedule = staggered_crash_schedule([1], first_crash_time=0.5)
        execution = _run(
            RoundBasedAsyncAlgorithm(MeanAlgorithm()), [0.0, 2.0, 6.0, 8.0], f=1,
            crash_schedule=schedule, max_time=10.0,
        )
        for tolerance in (0.0, 1e-6, 1.0):
            assert execution.agreement_time(tolerance) == _reference_agreement_time(
                execution, tolerance
            )

    def test_outputs_at_time_zero_are_the_initial_values(self):
        execution = _run(
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()), [0.0, 1.0, 4.0], f=0, max_time=5.0
        )
        np.testing.assert_allclose(
            np.sort(execution.outputs_at(0.0).ravel()), [0.0, 1.0, 4.0]
        )

    def test_outputs_at_interpolates_between_samples(self):
        execution = _run(
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()), [0.0, 1.0, 4.0], f=0, max_time=5.0
        )
        # Just before the first delivery (delay 1) nothing has changed.
        np.testing.assert_allclose(
            np.sort(execution.outputs_at(0.99).ravel()), [0.0, 1.0, 4.0]
        )
        # After the first synchronized round everyone is at the midpoint 2.
        np.testing.assert_allclose(execution.outputs_at(1.01), np.full((3, 1), 2.0))

    def test_timeline_is_chronological(self):
        execution = _run(
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()), [0.0, 3.0, 9.0], f=1,
            delay_scheduler=RandomDelayScheduler(seed=3),
            max_time=6.0,
        )
        times = [time for time, _outputs, _changed in execution.timeline()]
        assert times == sorted(times)
        assert len(times) == len(set(times))


class TestMinRelay:
    def test_minrelay_agrees_by_time_f_plus_one(self):
        values = [0.0, 1.0, 2.0, 3.0]
        execution = _run(MinRelayAlgorithm(), values, f=1, max_time=10.0)
        agreement = execution.agreement_time(1e-12)
        assert agreement is not None
        assert agreement <= 1 + 1 + 1e-9  # f + 1 with unit worst-case delays


class TestSortedSampleCacheInvalidation:
    """Regression tests: `_sorted_samples` must notice post-run mutations."""

    def _execution(self):
        return _run(
            RoundBasedAsyncAlgorithm(MidpointAlgorithm()), [0.0, 2.0, 8.0], f=1,
            delay_scheduler=RandomDelayScheduler(seed=5), max_time=6.0,
        )

    def test_in_place_time_mutation_invalidates_cache(self):
        execution = self._execution()
        before = execution.outputs_at(execution.final_time).copy()
        assert before is not None  # primes the sorted cache
        # Move every post-initial update past the horizon: queries before the
        # horizon must now see the initial values, not the stale sorted order.
        for sample in execution.samples:
            if sample.time > 0.0:
                sample.time = execution.final_time + 100.0
        outputs = execution.outputs_at(execution.final_time)
        initial = np.vstack([
            [sample.value for sample in execution.samples if sample.time == 0.0 and sample.agent == agent][0]
            for agent in range(execution.n)
        ])
        np.testing.assert_array_equal(outputs, initial)

    def test_same_length_replacement_invalidates_cache(self):
        execution = self._execution()
        execution.outputs_at(1.0)  # primes the cache
        replacement = OutputSample(time=0.5, agent=0, value=np.array([123.0]))
        execution.samples[-1] = replacement
        # Oracle: a fresh stable sort of the mutated list.  A stale cache
        # (length-only invalidation) would replay the old sorted order and
        # miss the replacement.
        expected = execution.final_outputs.copy()
        for sample in sorted(execution.samples, key=lambda s: s.time):
            if sample.time <= 1.0:
                expected[sample.agent] = sample.value
        np.testing.assert_array_equal(execution.outputs_at(1.0), expected)
        assert expected[0, 0] == 123.0
        assert any(s is replacement for s in execution._sorted_samples())

    def test_append_still_invalidates_cache(self):
        execution = self._execution()
        execution.agreement_time(1e-9)  # primes the cache
        execution.samples.append(
            OutputSample(time=execution.final_time + 1.0, agent=0, value=np.array([55.0]))
        )
        assert execution._sorted_samples()[-1].time == execution.final_time + 1.0

    def test_unchanged_samples_reuse_the_cached_sort(self):
        execution = self._execution()
        first = execution._sorted_samples()
        second = execution._sorted_samples()
        assert first is second
