"""The repro.api facade, EngineConfig semantics, and shape validation.

Three contracts are enforced:

* **Config-route equivalence** — every `Study` configuration (fast path ×
  reduction impl × chunking × batch on/off) is bit-for-bit identical to the
  direct engine call it compiles to, executed under the same `EngineConfig`.
* **EngineConfig semantics** — exception-safe restore, nesting (innermost
  wins), thread-local isolation, and validation errors; the deprecated
  module-level setters warn exactly once.
* **Shape validation** — mismatched `(B, n, d)` / `(C, n, n)` inputs raise
  `EnsembleShapeError` with named shapes instead of NumPy broadcast errors.
"""

import threading

import numpy as np
import pytest

from repro.algorithms import (
    AmortizedMidpointAlgorithm,
    MidpointAlgorithm,
)
from repro.algorithms import base as algorithms_base
from repro.algorithms.base import (
    get_masked_reduction_chunks,
    get_masked_reduction_impl,
    masked_min,
    masked_min_max,
)
from repro.api import CertifySpec, EngineConfig, ScenarioSpec, Study, StudyResult
from repro.config import current_engine_config
from repro.core.adversary import GreedyDiameterAdversary, PsiBlockAdversary
from repro.core.valency import ValencyEstimator
from repro.exceptions import ConfigError, EnsembleShapeError, ExecutionError
from repro.execution import (
    run_adversarial_ensemble,
    run_ensemble,
    run_execution,
    run_pattern_ensemble,
)
from repro.graphs.families import complete_graph, cycle_graph, directed_star_graph
from repro.models.patterns import PeriodicPattern, SequencePattern
from repro.models.standard import deaf_model, psi_model


def _pattern(n):
    return PeriodicPattern([complete_graph(n), cycle_graph(n), directed_star_graph(n)])


def _single_values(n, d=1, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=(n, d))


def _ensemble_values(batch, n, d=1, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=(batch, n, d))


# --------------------------------------------------------------------------- #
# EngineConfig semantics
# --------------------------------------------------------------------------- #


class TestEngineConfig:
    def test_applies_and_restores_reduction_settings(self):
        before_chunks = get_masked_reduction_chunks()
        before_impl = get_masked_reduction_impl()
        with EngineConfig(
            reduction_impl="dense", reduction_batch_chunk=7, reduction_receiver_chunk=3
        ):
            assert get_masked_reduction_impl() == "dense"
            assert get_masked_reduction_chunks() == {"batch": 7, "receivers": 3}
        assert get_masked_reduction_chunks() == before_chunks
        assert get_masked_reduction_impl() == before_impl

    def test_restores_on_exception(self):
        before_chunks = get_masked_reduction_chunks()
        before_impl = get_masked_reduction_impl()
        with pytest.raises(RuntimeError):
            with EngineConfig(reduction_impl="packed", reduction_batch_chunk=2):
                assert get_masked_reduction_impl() == "packed"
                raise RuntimeError("boom")
        assert get_masked_reduction_chunks() == before_chunks
        assert get_masked_reduction_impl() == before_impl

    def test_nesting_innermost_wins(self):
        with EngineConfig(use_fast_path=False, use_batch=False):
            with EngineConfig(use_batch=True):
                merged = current_engine_config()
                assert merged.use_fast_path is False  # inherited from outer
                assert merged.use_batch is True  # overridden by inner
            merged = current_engine_config()
            assert merged.use_batch is False
        assert current_engine_config().use_batch is None

    def test_shared_instance_across_threads_restores_correctly(self):
        # One EngineConfig object entered concurrently from two threads must
        # restore each thread's own reduction snapshot (the saved state lives
        # in the thread-local stack, not on the shared instance).
        shared = EngineConfig(reduction_batch_chunk=5)
        inside = threading.Event()
        release = threading.Event()
        observed = {}

        def holder():
            with shared:
                inside.set()
                release.wait(timeout=5)
            observed["holder_after"] = get_masked_reduction_chunks()["batch"]

        thread = threading.Thread(target=holder)
        thread.start()
        inside.wait(timeout=5)
        with EngineConfig(reduction_batch_chunk=3):
            with shared:
                assert get_masked_reduction_chunks()["batch"] == 5
            # Exiting the shared instance here must restore THIS thread's
            # outer value, not the holder thread's snapshot.
            assert get_masked_reduction_chunks()["batch"] == 3
        release.set()
        thread.join()
        assert observed["holder_after"] == "auto"
        assert get_masked_reduction_chunks()["batch"] == "auto"

    def test_thread_local_isolation(self):
        seen = {}

        def worker():
            # The main thread's active config must not leak into this thread.
            seen["config"] = current_engine_config().use_fast_path
            seen["impl"] = get_masked_reduction_impl()

        with EngineConfig(use_fast_path=False, reduction_impl="dense"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["config"] is None
        assert seen["impl"] == "auto"

    def test_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig(use_fast_path="yes")
        with pytest.raises(ConfigError):
            EngineConfig(reduction_impl="sparse")
        with pytest.raises(ConfigError):
            EngineConfig(reduction_batch_chunk=0)
        with pytest.raises(ConfigError):
            EngineConfig(scenario_chunk=-1)

    def test_use_fast_path_routes_engine(self):
        values = _single_values(4)
        pattern = _pattern(4)
        with EngineConfig(use_fast_path=False):
            slow = run_execution(MidpointAlgorithm(), values, pattern, 5)
        fast = run_execution(MidpointAlgorithm(), values, pattern, 5)
        np.testing.assert_array_equal(slow.output_history(), fast.output_history())

    def test_use_batch_false_routes_valency_reference(self):
        with EngineConfig(use_batch=False):
            estimator = ValencyEstimator(MidpointAlgorithm(), deaf_model(n=4))
            assert not estimator._batchable()
        estimator = ValencyEstimator(MidpointAlgorithm(), deaf_model(n=4))
        assert estimator._batchable()


class TestDeprecationShims:
    def _reset(self, *names):
        for name in names:
            algorithms_base._DEPRECATION_WARNED.discard(name)

    @staticmethod
    def _deprecations_emitted(callable_):
        import warnings

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            callable_()
        return [w for w in record if issubclass(w.category, DeprecationWarning)]

    def test_set_chunks_warns_exactly_once(self):
        self._reset("set_masked_reduction_chunks")
        try:
            first = self._deprecations_emitted(
                lambda: algorithms_base.set_masked_reduction_chunks(batch=4)
            )
            assert len(first) == 1
            second = self._deprecations_emitted(
                lambda: algorithms_base.set_masked_reduction_chunks(batch=8)
            )
            assert second == []
        finally:
            algorithms_base._apply_masked_reduction_chunks()

    def test_set_impl_warns_exactly_once(self):
        self._reset("set_masked_reduction_impl")
        try:
            first = self._deprecations_emitted(
                lambda: algorithms_base.set_masked_reduction_impl("dense")
            )
            assert len(first) == 1
            second = self._deprecations_emitted(
                lambda: algorithms_base.set_masked_reduction_impl("auto")
            )
            assert second == []
        finally:
            algorithms_base._apply_masked_reduction_impl()

    def test_context_managers_do_not_warn(self):
        from repro.algorithms.base import masked_reduction_chunks, masked_reduction_impl

        self._reset("set_masked_reduction_chunks", "set_masked_reduction_impl")

        def exercise():
            with masked_reduction_chunks(batch=4):
                pass
            with masked_reduction_impl("dense"):
                pass
            with EngineConfig(reduction_impl="dense", reduction_batch_chunk=2):
                pass

        assert self._deprecations_emitted(exercise) == []


# --------------------------------------------------------------------------- #
# Config-route equivalence matrix
# --------------------------------------------------------------------------- #


CONFIG_MATRIX = [
    EngineConfig(),
    EngineConfig(use_fast_path=True),
    EngineConfig(use_fast_path=False),
    EngineConfig(reduction_impl="dense"),
    EngineConfig(reduction_impl="packed"),
    EngineConfig(reduction_batch_chunk=2, reduction_receiver_chunk=3),
    EngineConfig(use_fast_path=True, reduction_impl="packed", reduction_batch_chunk=1),
    EngineConfig(use_batch=False),
    EngineConfig(use_batch=True),
    EngineConfig(use_batch=False, use_fast_path=False, reduction_impl="dense"),
]


def _config_copy(config):
    return EngineConfig(
        use_fast_path=config.use_fast_path,
        use_batch=config.use_batch,
        use_packed=config.use_packed,
        reduction_impl=config.reduction_impl,
        reduction_batch_chunk=config.reduction_batch_chunk,
        reduction_receiver_chunk=config.reduction_receiver_chunk,
        scenario_chunk=config.scenario_chunk,
    )


class TestStudyRouteEquivalence:
    @pytest.mark.parametrize("config_index", range(len(CONFIG_MATRIX)))
    def test_single_scenario_pattern_route(self, config_index):
        config = CONFIG_MATRIX[config_index]
        values = _single_values(5, seed=1)
        result = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=values,
            pattern=_pattern(5),
            rounds=8,
            config=_config_copy(config),
        ).run()
        with _config_copy(config):
            direct = run_execution(MidpointAlgorithm(), values, _pattern(5), 8)
        np.testing.assert_array_equal(
            result.execution.output_history(), direct.output_history()
        )
        assert result.provenance.route == "run_execution"
        if config.use_fast_path is not None:
            assert result.provenance.fast_path == config.use_fast_path

    @pytest.mark.parametrize("config_index", range(len(CONFIG_MATRIX)))
    def test_pattern_ensemble_route(self, config_index):
        config = CONFIG_MATRIX[config_index]
        values = _ensemble_values(4, 5, seed=2)
        result = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=values,
            pattern=_pattern(5),
            rounds=8,
            config=_config_copy(config),
        ).run()
        with _config_copy(config):
            direct = run_pattern_ensemble(MidpointAlgorithm(), values, _pattern(5), 8)
        np.testing.assert_array_equal(
            result.execution.recorded_outputs, direct.recorded_outputs
        )
        assert result.provenance.route == "run_pattern_ensemble"
        assert result.provenance.batched == direct.batched
        if config.use_batch is not None:
            assert result.provenance.batched == config.use_batch

    @pytest.mark.parametrize("config_index", range(len(CONFIG_MATRIX)))
    def test_adversarial_ensemble_route(self, config_index):
        config = CONFIG_MATRIX[config_index]
        values = _ensemble_values(3, 4, seed=3)
        result = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=values,
            adversary=GreedyDiameterAdversary(deaf_model(n=4)),
            rounds=6,
            config=_config_copy(config),
        ).run()
        with _config_copy(config):
            direct = run_adversarial_ensemble(
                MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=4)), 6
            )
        np.testing.assert_array_equal(
            result.execution.recorded_outputs, direct.recorded_outputs
        )
        for scenario in range(3):
            assert result.execution.scenario_graphs(scenario) == direct.scenario_graphs(
                scenario
            )
        assert result.provenance.route == "run_adversarial_ensemble"
        assert result.provenance.batched == direct.batched

    def test_explicit_graphs_ensemble_route(self):
        values = _ensemble_values(3, 4, seed=4)
        graphs = [complete_graph(4), cycle_graph(4), complete_graph(4)]
        result = Study(
            algorithm=MidpointAlgorithm(), initial_values=values, graphs=graphs
        ).run()
        direct = run_ensemble(MidpointAlgorithm(), values, graphs)
        np.testing.assert_array_equal(
            result.execution.recorded_outputs, direct.recorded_outputs
        )
        assert result.provenance.route == "run_ensemble"
        assert result.rounds == 3

    def test_explicit_graphs_single_route(self):
        values = _single_values(4, seed=5)
        graphs = [complete_graph(4), cycle_graph(4)]
        result = Study(
            algorithm=MidpointAlgorithm(), initial_values=values, graphs=graphs
        ).run()
        direct = run_execution(MidpointAlgorithm(), values, SequencePattern(graphs), 2)
        np.testing.assert_array_equal(
            result.execution.output_history(), direct.output_history()
        )
        assert result.execution.graphs == graphs

    @pytest.mark.parametrize("use_batch", [True, False])
    def test_certification_route(self, use_batch):
        model = deaf_model(n=4)
        values = _single_values(4, seed=6)
        config = EngineConfig(use_batch=use_batch)
        result = Study(
            algorithm=MidpointAlgorithm(),
            model=model,
            initial_values=values,
            adversary=GreedyDiameterAdversary(model),
            rounds=6,
            certify=CertifySpec(suffix_rounds=25, exploration_depth=1),
            config=config,
        ).run()
        with EngineConfig(use_batch=use_batch):
            direct = run_execution(
                MidpointAlgorithm(), values, GreedyDiameterAdversary(model), 6
            )
            estimator = ValencyEstimator(
                MidpointAlgorithm(), model, suffix_rounds=25, exploration_depth=1
            )
            estimates = estimator.trace(direct.configurations)
        assert result.certificates is not None
        assert result.certificates.valency_trace == [
            float(estimate.lower_diameter) for estimate in estimates
        ]
        for mine, theirs in zip(result.certificates.estimates, estimates):
            assert np.array_equal(mine.limits, theirs.limits)
        lower, upper = result.certificates.rate_interval
        assert lower <= upper + 1e-12

    def test_stateful_certification_covers_amortized_midpoint(self):
        # Acceptance: the certified study of the stateful algorithm routes
        # through the batch_state valency path and matches the reference.
        model = psi_model(4)
        values = np.linspace(0.0, 1.0, 4)
        batched = Study(
            algorithm=AmortizedMidpointAlgorithm(),
            model=model,
            initial_values=values,
            adversary=PsiBlockAdversary(4),
            rounds=6,
            certify=CertifySpec(suffix_rounds=20),
        ).run()
        reference = Study(
            algorithm=AmortizedMidpointAlgorithm(),
            model=model,
            initial_values=values,
            adversary=PsiBlockAdversary(4),
            rounds=6,
            certify=CertifySpec(suffix_rounds=20, use_batch=False),
        ).run()
        assert batched.certificates.valency_trace == reference.certificates.valency_trace


# --------------------------------------------------------------------------- #
# Study declaration and result surface
# --------------------------------------------------------------------------- #


class TestStudyDeclaration:
    def test_requires_exactly_one_communication_source(self):
        with pytest.raises(ConfigError):
            Study(algorithm=MidpointAlgorithm(), initial_values=[0.0, 1.0], rounds=3)
        with pytest.raises(ConfigError):
            Study(
                algorithm=MidpointAlgorithm(),
                initial_values=[0.0, 1.0],
                rounds=3,
                pattern=_pattern(2),
                adversary=GreedyDiameterAdversary(deaf_model(n=2)),
            )

    def test_adaptive_pattern_is_treated_as_adversary(self):
        spec = ScenarioSpec(
            initial_values=[0.0, 1.0], rounds=3,
            pattern=GreedyDiameterAdversary(deaf_model(n=2)),
        )
        assert spec.adversary is not None and spec.pattern is None

    def test_rounds_derived_from_graphs(self):
        spec = ScenarioSpec(
            initial_values=[0.0, 1.0], graphs=[complete_graph(2)] * 4
        )
        assert spec.rounds == 4
        with pytest.raises(ConfigError):
            ScenarioSpec(
                initial_values=[0.0, 1.0], rounds=3, graphs=[complete_graph(2)] * 4
            )

    def test_certify_needs_model(self):
        with pytest.raises(ConfigError):
            Study(
                algorithm=MidpointAlgorithm(),
                initial_values=[0.0, 1.0],
                pattern=_pattern(2),
                rounds=3,
                certify=True,
            )

    def test_certify_ensembles_returns_per_scenario_certificates(self):
        result = Study(
            algorithm=MidpointAlgorithm(),
            model=deaf_model(n=4),
            initial_values=_ensemble_values(2, 4),
            pattern=_pattern(4),
            rounds=3,
            certify=True,
        ).run()
        assert isinstance(result.certificates, list)
        assert len(result.certificates) == 2
        assert all(len(c.valency_trace) == 4 for c in result.certificates)

    def test_scenario_and_inline_fields_are_exclusive(self):
        spec = ScenarioSpec(initial_values=[0.0, 1.0], rounds=3, pattern=_pattern(2))
        with pytest.raises(ConfigError):
            Study(algorithm=MidpointAlgorithm(), scenario=spec, initial_values=[0.0, 1.0])
        # rounds/record_every/scenario_labels must not be silently ignored.
        with pytest.raises(ConfigError):
            Study(algorithm=MidpointAlgorithm(), scenario=spec, rounds=50)
        with pytest.raises(ConfigError):
            Study(algorithm=MidpointAlgorithm(), scenario=spec, record_every=2)
        with pytest.raises(ConfigError):
            Study(algorithm=MidpointAlgorithm(), scenario=spec, scenario_labels=["a"])

    def test_result_surface(self):
        result = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=_ensemble_values(3, 4, seed=7),
            adversary=GreedyDiameterAdversary(deaf_model(n=4)),
            rounds=5,
        ).run()
        assert isinstance(result, StudyResult)
        assert result.is_ensemble
        assert result.final_outputs.shape == (3, 4, 1)
        assert result.diameters().shape[1] == 3
        assert result.final_diameters().shape == (3,)
        assert result.decision_rounds(10.0).shape == (3,)
        assert len(result.round_choices()) == 5
        single = Study(
            algorithm=MidpointAlgorithm(),
            initial_values=_single_values(4, seed=8),
            pattern=_pattern(4),
            rounds=5,
        ).run()
        assert not single.is_ensemble
        assert single.final_outputs.shape == (4, 1)
        assert single.decision_rounds(10.0) == 0


# --------------------------------------------------------------------------- #
# Shape validation
# --------------------------------------------------------------------------- #


class TestShapeValidation:
    def test_rejects_wrong_rank_initial_values(self):
        with pytest.raises(EnsembleShapeError):
            run_ensemble(
                MidpointAlgorithm(),
                np.zeros((2, 2, 2, 2)),
                [complete_graph(2)],
            )
        with pytest.raises(EnsembleShapeError):
            Study(
                algorithm=MidpointAlgorithm(),
                initial_values=np.zeros((2, 2, 2, 2)),
                pattern=_pattern(2),
                rounds=1,
            ).run()

    def test_rejects_empty_ensemble(self):
        with pytest.raises(EnsembleShapeError):
            run_ensemble(MidpointAlgorithm(), np.zeros((0, 3, 1)), [complete_graph(3)])

    def test_rejects_non_graph_round_entries(self):
        values = _ensemble_values(2, 3)
        with pytest.raises(EnsembleShapeError):
            run_ensemble(
                MidpointAlgorithm(), values, [np.ones((3, 3), dtype=bool)]
            )
        with pytest.raises(EnsembleShapeError):
            run_ensemble(
                MidpointAlgorithm(), values, [[complete_graph(3), "nope"]]
            )

    def test_masked_reduction_names_agent_mismatch(self):
        adjacency = np.ones((4, 5, 5), dtype=bool)
        values = np.zeros((4, 3, 1))
        with pytest.raises(EnsembleShapeError) as excinfo:
            masked_min(adjacency, values)
        assert "agents" in str(excinfo.value)

    def test_masked_reduction_names_lead_mismatch(self):
        adjacency = np.ones((4, 3, 3), dtype=bool)
        values = np.zeros((5, 3, 1))
        with pytest.raises(EnsembleShapeError) as excinfo:
            masked_min_max(adjacency, values)
        assert "leading" in str(excinfo.value)

    def test_masked_reduction_rejects_non_square_adjacency(self):
        with pytest.raises(EnsembleShapeError):
            masked_min(np.ones((3, 4), dtype=bool), np.zeros((4, 1)))

    def test_error_is_execution_error_subclass(self):
        # Backwards compatibility: callers catching ExecutionError keep working.
        assert issubclass(EnsembleShapeError, ExecutionError)
