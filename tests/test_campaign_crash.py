"""Crash safety: a SIGKILLed campaign resumes to the exact same state.

A child process runs a campaign and is SIGKILLed mid-round (via the
``_kill_after_cases`` hook).  Resuming over the same corpus + journal must
produce a corpus and journal *identical* to an uninterrupted run of the same
configuration: journaled rounds replay their recorded effects, the
interrupted round re-executes deterministically, and content-keyed writes
make the replays idempotent.  A torn final journal line (the signature of a
crash mid-append) must be healed on resume, not corrupt later appends.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.campaign import run_campaign
from repro.service.checkpoint import CheckpointJournal

SEED = 5
BUDGET = 6
BATCH = 3  # two rounds of three cases
TARGETS = ["batch_vs_loop", "facade_vs_direct", "zero_fault_vs_none"]


def _campaign(corpus, journal):
    return run_campaign(
        SEED, BUDGET, corpus, journal, batch_size=BATCH, targets=TARGETS
    )


def _corpus_files(root):
    return {p.name: p.read_text() for p in sorted(Path(root).glob("*.json"))}


def _journal_records(path):
    with CheckpointJournal(path) as journal:
        return {key: journal.get(key) for key in journal.keys()}


def _run_child_killed_mid_round(tmp_path, kill_after):
    corpus = str(tmp_path / "corpus")
    journal = str(tmp_path / "journal.jsonl")
    child_code = textwrap.dedent(
        f"""
        from repro.campaign import run_campaign
        run_campaign(
            {SEED}, {BUDGET}, {corpus!r}, {journal!r}, batch_size={BATCH},
            targets={TARGETS!r}, _kill_after_cases={kill_after},
        )
        print("DONE", flush=True)
        """
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", child_code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == -signal.SIGKILL, (proc.returncode, proc.stderr)
    assert "DONE" not in proc.stdout
    return corpus, journal


def test_sigkill_mid_round_resumes_to_identical_state(tmp_path):
    # Reference: the same campaign, uninterrupted, in fresh directories.
    reference = _campaign(tmp_path / "ref-corpus", tmp_path / "ref-journal.jsonl")
    assert reference.executed == BUDGET

    # Kill the child mid-round-2: round 1 (3 cases) is journaled, the 4th
    # case completes, then SIGKILL lands before round 2 reaches the journal.
    corpus, journal = _run_child_killed_mid_round(tmp_path, kill_after=4)
    interrupted = _journal_records(journal)
    assert len(interrupted) == 1, "exactly round 1 should be journaled"

    resumed = run_campaign(
        SEED, BUDGET, corpus, journal, batch_size=BATCH, targets=TARGETS
    )
    assert resumed.replayed_rounds == 1  # round 1 from the journal
    assert resumed.executed == reference.executed
    assert resumed.corpus_size == reference.corpus_size

    # Bit-for-bit: corpus files and journal records equal the uninterrupted
    # run's (content-keyed canonical JSON on both sides).
    assert _corpus_files(corpus) == _corpus_files(tmp_path / "ref-corpus")
    assert _journal_records(journal) == _journal_records(
        tmp_path / "ref-journal.jsonl"
    )


def test_resume_heals_torn_final_journal_line(tmp_path):
    reference = _campaign(tmp_path / "ref-corpus", tmp_path / "ref-journal.jsonl")

    corpus, journal = _run_child_killed_mid_round(tmp_path, kill_after=4)
    # Simulate the torn write of a crash mid-append: a partial record with
    # no trailing newline at the end of the journal.
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-partial-rec')

    resumed = run_campaign(
        SEED, BUDGET, corpus, journal, batch_size=BATCH, targets=TARGETS
    )
    assert resumed.executed == reference.executed
    assert _corpus_files(corpus) == _corpus_files(tmp_path / "ref-corpus")
    assert _journal_records(journal) == _journal_records(
        tmp_path / "ref-journal.jsonl"
    )
    # The torn line was truncated on load: every line of the healed journal
    # is complete, parseable JSON.
    for line in Path(journal).read_text().splitlines():
        json.loads(line)


def test_kill_during_first_round_restarts_from_scratch(tmp_path):
    reference = _campaign(tmp_path / "ref-corpus", tmp_path / "ref-journal.jsonl")
    corpus, journal = _run_child_killed_mid_round(tmp_path, kill_after=2)
    assert len(_journal_records(journal)) == 0  # nothing durable yet
    assert _corpus_files(corpus) == {}  # effects apply only after the journal

    resumed = run_campaign(
        SEED, BUDGET, corpus, journal, batch_size=BATCH, targets=TARGETS
    )
    assert resumed.replayed_rounds == 0
    assert _corpus_files(corpus) == _corpus_files(tmp_path / "ref-corpus")
    assert _journal_records(journal) == _journal_records(
        tmp_path / "ref-journal.jsonl"
    )
