"""Negative paths: EnsembleShapeError messages must name the offending shapes.

A mis-shaped ensemble input must fail at the entry point with an
:class:`~repro.exceptions.EnsembleShapeError` whose message *names the
offending shapes or counts* — not surface later as an opaque NumPy broadcast
error.  Covered entry points: the ensemble runners, the masked reductions,
the facade's scale detection, and the new certify-ensemble paths.
"""

import numpy as np
import pytest

from repro.algorithms import MidpointAlgorithm
from repro.algorithms.base import masked_min, masked_min_max
from repro.api import Study
from repro.core.valency import ValencyEstimator
from repro.exceptions import EnsembleShapeError, ExecutionError
from repro.execution import (
    run_adversarial_ensemble,
    run_ensemble,
    run_pattern_ensemble,
    stack_initial_values,
)
from repro.graphs.families import complete_graph
from repro.models.patterns import AdversarialPattern, EnsemblePlan
from repro.models.standard import deaf_model


def _values(batch_size, n, d=1):
    return np.random.default_rng(0).uniform(0.0, 1.0, size=(batch_size, n, d))


class TestRunnerShapeErrors:
    def test_four_dimensional_values_name_their_shape(self):
        with pytest.raises(EnsembleShapeError, match=r"\(2, 3, 4, 1\)"):
            run_ensemble(MidpointAlgorithm(), np.zeros((2, 3, 4, 1)), [])

    def test_mismatched_scenario_shapes_name_both(self):
        with pytest.raises(EnsembleShapeError, match=r"\(3, 1\), expected \(4, 1\)"):
            stack_initial_values([np.zeros((4, 1)), np.zeros((3, 1))])

    def test_empty_ensemble_is_named(self):
        with pytest.raises(EnsembleShapeError, match="at least one scenario"):
            stack_initial_values([])

    def test_degenerate_axis_names_the_tuple(self):
        with pytest.raises(EnsembleShapeError, match=r"\(0, 4, 1\)"):
            run_ensemble(MidpointAlgorithm(), np.zeros((0, 4, 1)), [])

    def test_graph_agent_mismatch_names_both_counts(self):
        with pytest.raises(EnsembleShapeError, match="5 agents, scenarios have 4"):
            run_ensemble(MidpointAlgorithm(), _values(2, 4), [complete_graph(5)])

    def test_per_scenario_graph_count_mismatch(self):
        graph = complete_graph(4)
        with pytest.raises(EnsembleShapeError, match="needs 3 graphs, got 2"):
            run_ensemble(MidpointAlgorithm(), _values(3, 4), [[graph, graph]])

    def test_non_graph_round_entry_names_type(self):
        with pytest.raises(EnsembleShapeError, match="got int"):
            run_ensemble(MidpointAlgorithm(), _values(2, 4), [7])

    def test_pattern_ensemble_propagates_value_shape_errors(self):
        with pytest.raises(EnsembleShapeError, match=r"\(2, 2, 3, 1\)"):
            run_pattern_ensemble(
                MidpointAlgorithm(),
                np.zeros((2, 2, 3, 1)),
                _constant_pattern(3),
                rounds=2,
            )


def _constant_pattern(n):
    from repro.models.patterns import ConstantPattern

    return ConstantPattern(complete_graph(n))


class _RaggedPlanAdversary(AdversarialPattern):
    """Returns per-scenario plans with inconsistent candidate counts."""

    def __init__(self, n):
        self._graph = complete_graph(n)

    def choose(self, context):
        return self._graph

    def ensemble_plans(self, round_number, n, histories):
        one = EnsemblePlan(candidates=((self._graph,),), commit_rounds=1)
        two = EnsemblePlan(candidates=((self._graph,), (self._graph,)), commit_rounds=1)
        return [one] + [two] * (len(histories) - 1)


class _WrongCountPlanAdversary(_RaggedPlanAdversary):
    def ensemble_plans(self, round_number, n, histories):
        return [EnsemblePlan(candidates=((self._graph,),), commit_rounds=1)]


class TestAdversarialRunnerShapeErrors:
    # threads=1 pins the serial route: the parallel backend validates plan
    # counts per shard (each shard's adversary copy only ever sees its own
    # slice of histories), so the full-ensemble counts in these messages are
    # a serial-engine guarantee.

    def test_ragged_per_scenario_plans_name_the_counts(self):
        with pytest.raises(EnsembleShapeError, match=r"counts \[1, 2\]"):
            run_adversarial_ensemble(
                MidpointAlgorithm(), _values(3, 4), _RaggedPlanAdversary(4),
                rounds=2, threads=1,
            )

    def test_wrong_plan_count_names_expected_and_got(self):
        with pytest.raises(EnsembleShapeError, match=r"\(3\), got 1"):
            run_adversarial_ensemble(
                MidpointAlgorithm(), _values(3, 4), _WrongCountPlanAdversary(4),
                rounds=2, threads=1,
            )

    def test_candidate_graph_size_mismatch_names_both(self):
        class WrongSizeAdversary(AdversarialPattern):
            def choose(self, context):
                return complete_graph(4)

            def ensemble_plan(self, round_number, n):
                return EnsemblePlan(candidates=((complete_graph(5),),), commit_rounds=1)

        with pytest.raises(EnsembleShapeError, match="5 agents, scenarios have 4"):
            run_adversarial_ensemble(
                MidpointAlgorithm(), _values(2, 4), WrongSizeAdversary(), rounds=1
            )


class TestMaskedReductionShapeErrors:
    def test_non_square_adjacency_names_shape(self):
        with pytest.raises(EnsembleShapeError, match=r"\(2, 4, 3\)"):
            masked_min(np.ones((2, 4, 3), dtype=bool), np.zeros((2, 4, 1)))

    def test_agent_count_mismatch_names_both_tensors(self):
        with pytest.raises(EnsembleShapeError, match="4 vs 5"):
            masked_min(np.ones((4, 4), dtype=bool), np.zeros((5, 1)))

    def test_incompatible_lead_axes_name_both_shapes(self):
        with pytest.raises(
            EnsembleShapeError, match=r"\(3, 4, 4\).*\(2, 4, 1\)"
        ):
            masked_min_max(np.ones((3, 4, 4), dtype=bool), np.zeros((2, 4, 1)))

    def test_scalar_values_are_rejected_with_shape(self):
        with pytest.raises(EnsembleShapeError, match=r"\(4,\)"):
            masked_min(np.ones((4, 4), dtype=bool), np.zeros(4))


class TestCertifyEnsembleShapeErrors:
    def test_model_agent_mismatch_names_model_and_ensemble_shapes(self):
        ensemble = run_pattern_ensemble(
            MidpointAlgorithm(), _values(2, 4), _constant_pattern(4), 2,
            record_states=True,
        )
        estimator = ValencyEstimator(
            MidpointAlgorithm(), deaf_model(n=5), suffix_rounds=5
        )
        with pytest.raises(
            EnsembleShapeError, match="5 agents, ensemble scenarios have 4"
        ):
            estimator.certify_ensemble(ensemble)

    def test_study_certify_ensemble_with_bad_values_names_shape(self):
        with pytest.raises(EnsembleShapeError, match="1-D/2-D.*3-D"):
            Study(
                algorithm=MidpointAlgorithm(),
                initial_values=np.zeros((2, 2, 3, 1)),
                pattern=_constant_pattern(3),
                rounds=2,
                model=deaf_model(n=3),
                certify=True,
            ).run()

    def test_mixed_round_batch_state_stacking_is_rejected(self):
        # Internal invariant of the stacked batch-state path: configurations
        # must share one round.
        from repro.algorithms import AmortizedMidpointAlgorithm
        from repro.execution.engine import initial_configuration, apply_graph
        from repro.models.standard import psi_model

        algorithm = AmortizedMidpointAlgorithm()
        config0 = initial_configuration(algorithm, np.linspace(0, 1, 4))
        config1 = apply_graph(algorithm, config0, complete_graph(4))
        estimator = ValencyEstimator(algorithm, psi_model(4), suffix_rounds=5)
        with pytest.raises(ExecutionError, match=r"rounds \[0, 1\]"):
            estimator._limit_estimates_batch_state([config0, config1])
