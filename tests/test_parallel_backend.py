"""Cross-backend differential matrix for the parallel (B-axis sharded) engine.

``EngineConfig(threads=k)`` promises that sharding the scenario axis across a
worker pool is *invisible in the results*: for every route — graph-sequence
ensembles, pattern ensembles, adversarial ensembles, faulted ensembles and
``ValencyEstimator.certify_ensemble`` — the merged record is **bit-for-bit
identical** to the serial run.  This suite pins that promise with a
differential matrix over ``threads ∈ {1, 2, 7}``:

* odd ``B`` that none of the worker counts divides evenly,
* ``B`` smaller than the worker count (shards clamp, never go empty),
* stateless (midpoint) and stateful (amortized-midpoint) algorithms,
* the batched and reference (``use_batch=False``) engine paths,
* counter-based fault draws sliced through ``FaultPlan.scenario_base``,
* per-shard deep-copied adversaries with merged ``round_choices``, and
* the thread count arriving via keyword, config scope, and ``REPRO_THREADS``.

Plus unit coverage of :func:`repro.execution.parallel.shard_bounds` and of
:func:`repro.execution.batch.merge_ensemble_executions` on adversarial
shard lists.
"""

import numpy as np
import pytest

from repro.algorithms import AmortizedMidpointAlgorithm, MidpointAlgorithm
from repro.config import EngineConfig
from repro.core.adversary import GreedyDiameterAdversary, PsiBlockAdversary
from repro.core.valency import ValencyEstimator
from repro.exceptions import ExecutionError
from repro.execution import (
    run_adversarial_ensemble,
    run_ensemble,
    run_pattern_ensemble,
)
from repro.execution.batch import merge_ensemble_executions
from repro.execution.parallel import shard_bounds
from repro.faults import FaultSpec
from repro.graphs.generators import random_graph
from repro.models.patterns import PeriodicPattern, SequencePattern
from repro.models.standard import deaf_model, psi_model

#: 1 is the serial baseline; 2 and 7 both leave remainders on B=13 and 7
#: exceeds the small-B cases, exercising shard clamping.
THREAD_COUNTS = (1, 2, 7)

ALGORITHMS = {
    "midpoint": MidpointAlgorithm,
    "amortized": AmortizedMidpointAlgorithm,
}


def _values(batch_size, n, d=1, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=(batch_size, n, d))


def _graph_rounds(n, batch_size, rounds, seed=0):
    """A schedule mixing shared rounds and per-scenario graph lists."""
    rng = np.random.default_rng(seed)
    schedule = []
    for round_index in range(rounds):
        if round_index % 2 == 0:
            schedule.append(random_graph(n, rng, 0.6))
        else:
            schedule.append([random_graph(n, rng, 0.6) for _ in range(batch_size)])
    return schedule


def _ensemble_fingerprint(ensemble):
    """Everything observable about an ensemble record, byte-exact."""
    return (
        ensemble.recorded_rounds,
        ensemble.batch_size,
        ensemble.recorded_outputs.tobytes(),
        ensemble.recorded_outputs.shape,
        np.asarray(ensemble.diameters()).tobytes(),
    )


def _assert_matches_serial(run, threads_values=THREAD_COUNTS):
    """Run ``run(threads)`` for every count and demand byte-identity with serial."""
    baseline = run(1)
    want = _ensemble_fingerprint(baseline)
    for threads in threads_values:
        for route, sharded in (
            ("keyword", run(threads)),
            ("config", _run_under_config(run, threads)),
        ):
            got = _ensemble_fingerprint(sharded)
            assert got == want, (
                f"threads={threads} via {route} diverged from the serial run"
            )
    return baseline


def _run_under_config(run, threads):
    with EngineConfig(threads=threads):
        return run(None)


class TestGraphsRoute:
    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("use_batch", [None, False])
    def test_odd_batch_matches_serial(self, algorithm_name, use_batch):
        n, batch_size, rounds = 5, 13, 6
        values = _values(batch_size, n, d=2, seed=3)
        graphs = _graph_rounds(n, batch_size, rounds, seed=4)
        algorithm = ALGORITHMS[algorithm_name]()

        def run(threads):
            return run_ensemble(
                algorithm, values, graphs,
                record_every=2, use_batch=use_batch,
                record_states=True, threads=threads,
            )

        baseline = _assert_matches_serial(run)
        # Per-scenario snapshots survive the shard merge too.
        for scenario in (0, 6, 12):
            solo = run(7).scenario_configurations(scenario)
            for config_sharded, config_serial in zip(
                solo, baseline.scenario_configurations(scenario)
            ):
                assert config_sharded.round_number == config_serial.round_number
                assert np.array_equal(config_sharded.outputs, config_serial.outputs)

    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    def test_batch_smaller_than_thread_count(self, algorithm_name):
        n, batch_size, rounds = 4, 3, 5
        values = _values(batch_size, n, seed=11)
        graphs = _graph_rounds(n, batch_size, rounds, seed=12)
        algorithm = ALGORITHMS[algorithm_name]()

        def run(threads):
            return run_ensemble(
                algorithm, values, graphs, record_every=1, threads=threads,
            )

        _assert_matches_serial(run)

    def test_single_scenario_stays_on_serial_path(self):
        n = 4
        values = _values(1, n, seed=21)
        graphs = _graph_rounds(n, 1, 4, seed=22)

        def run(threads):
            return run_ensemble(MidpointAlgorithm(), values, graphs, threads=threads)

        _assert_matches_serial(run)

    def test_scenario_labels_survive_the_merge(self):
        n, batch_size = 4, 13
        labels = [f"scenario-{i}" for i in range(batch_size)]
        values = _values(batch_size, n, seed=31)
        graphs = _graph_rounds(n, batch_size, 4, seed=32)
        serial = run_ensemble(
            MidpointAlgorithm(), values, graphs, scenario_labels=labels, threads=1
        )
        sharded = run_ensemble(
            MidpointAlgorithm(), values, graphs, scenario_labels=labels, threads=7
        )
        assert list(sharded.scenario_labels) == list(serial.scenario_labels) == labels


class TestFaultedRoute:
    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("use_batch", [None, False])
    def test_fault_draws_slice_exactly(self, algorithm_name, use_batch):
        # Counter-based draws: shard b sees the same per-scenario randomness
        # the unsharded plan would give scenario b (FaultPlan.scenario_base).
        n, batch_size, rounds = 5, 13, 6
        values = _values(batch_size, n, seed=41)
        graphs = _graph_rounds(n, batch_size, rounds, seed=42)
        plan = FaultSpec(drop=0.3, seed=7, enforce_model=False)
        algorithm = ALGORITHMS[algorithm_name]()

        def run(threads):
            return run_ensemble(
                algorithm, values, graphs,
                record_every=2, use_batch=use_batch,
                fault_plan=plan, threads=threads,
            )

        _assert_matches_serial(run)


class TestPatternRoute:
    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    def test_shared_pattern_matches_serial(self, algorithm_name):
        n, batch_size, rounds = 5, 13, 7
        values = _values(batch_size, n, seed=51)
        rng = np.random.default_rng(52)
        pattern = PeriodicPattern([random_graph(n, rng, 0.6) for _ in range(3)])
        algorithm = ALGORITHMS[algorithm_name]()

        def run(threads):
            return run_pattern_ensemble(
                algorithm, values, pattern, rounds, record_every=2, threads=threads,
            )

        _assert_matches_serial(run)

    def test_per_scenario_patterns_match_serial(self):
        # Patterns are materialized on the caller thread before sharding, so
        # per-scenario (stateful) patterns cannot race across workers.
        n, batch_size, rounds = 4, 7, 5
        values = _values(batch_size, n, seed=61)
        rng = np.random.default_rng(62)
        patterns = [
            SequencePattern([random_graph(n, rng, 0.7) for _ in range(rounds)])
            for _ in range(batch_size)
        ]

        def run(threads):
            return run_pattern_ensemble(
                MidpointAlgorithm(), values, patterns, rounds, threads=threads,
            )

        _assert_matches_serial(run)


class TestAdversarialRoute:
    @pytest.mark.parametrize(
        "algorithm, adversary_factory, n",
        [
            (MidpointAlgorithm(), lambda: GreedyDiameterAdversary(deaf_model(n=4)), 4),
            (AmortizedMidpointAlgorithm(), lambda: PsiBlockAdversary(5), 5),
        ],
        ids=["greedy-midpoint", "psi-amortized"],
    )
    def test_outputs_and_choices_match_serial(self, algorithm, adversary_factory, n):
        batch_size, rounds = 11, 6
        values = _values(batch_size, n, seed=71)

        def run(threads):
            # A fresh adversary per run: adversaries are stateful.
            return run_adversarial_ensemble(
                algorithm, values, adversary_factory(), rounds,
                record_every=2, threads=threads,
            )

        baseline = run(1)
        for threads in THREAD_COUNTS:
            sharded = run(threads)
            assert _ensemble_fingerprint(sharded) == _ensemble_fingerprint(baseline)
            # The committed graph choices merge back in scenario order.
            assert len(sharded.round_choices) == len(baseline.round_choices)
            for round_serial, round_sharded in zip(
                baseline.round_choices, sharded.round_choices
            ):
                assert len(round_sharded) == len(round_serial) == batch_size
                for choice_serial, choice_sharded in zip(round_serial, round_sharded):
                    assert np.array_equal(
                        choice_sharded.adjacency, choice_serial.adjacency
                    )

    def test_config_scope_applies_to_adversarial_route(self):
        n, batch_size, rounds = 4, 5, 4
        values = _values(batch_size, n, seed=81)
        serial = run_adversarial_ensemble(
            MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=n)),
            rounds, threads=1,
        )
        with EngineConfig(threads=7):
            sharded = run_adversarial_ensemble(
                MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=n)),
                rounds,
            )
        assert _ensemble_fingerprint(sharded) == _ensemble_fingerprint(serial)


class TestCertifyRoute:
    @pytest.mark.parametrize(
        "algorithm, model_factory, n",
        [
            (MidpointAlgorithm(), lambda n: deaf_model(n=n), 4),
            (AmortizedMidpointAlgorithm(), psi_model, 5),
        ],
        ids=["midpoint-deaf", "amortized-psi"],
    )
    def test_certificates_match_serial(self, algorithm, model_factory, n):
        batch_size, rounds = 13, 4
        values = _values(batch_size, n, seed=91)
        graphs = _graph_rounds(n, batch_size, rounds, seed=92)
        ensemble = run_ensemble(
            algorithm, values, graphs, record_every=2, record_states=True
        )
        model = model_factory(n)

        def certify(threads):
            estimator = ValencyEstimator(
                algorithm, model, suffix_rounds=12, threads=threads
            )
            return estimator.certify_ensemble(ensemble)

        baseline = certify(1)
        for threads in THREAD_COUNTS:
            for per_scenario in (certify(threads), _certify_under_config(
                algorithm, model, ensemble, threads
            )):
                assert len(per_scenario) == len(baseline) == batch_size
                for rows_sharded, rows_serial in zip(per_scenario, baseline):
                    assert len(rows_sharded) == len(rows_serial)
                    for est_sharded, est_serial in zip(rows_sharded, rows_serial):
                        assert (
                            est_sharded.limits.tobytes()
                            == est_serial.limits.tobytes()
                        )
                        assert est_sharded.lower_diameter == est_serial.lower_diameter
                        assert est_sharded.upper_diameter == est_serial.upper_diameter


def _certify_under_config(algorithm, model, ensemble, threads):
    with EngineConfig(threads=threads):
        estimator = ValencyEstimator(algorithm, model, suffix_rounds=12)
        return estimator.certify_ensemble(ensemble)


class TestEnvironmentDefault:
    def test_repro_threads_env_matches_serial(self, monkeypatch):
        n, batch_size = 4, 13
        values = _values(batch_size, n, seed=101)
        graphs = _graph_rounds(n, batch_size, 5, seed=102)
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        serial = run_ensemble(MidpointAlgorithm(), values, graphs)
        monkeypatch.setenv("REPRO_THREADS", "4")
        sharded = run_ensemble(MidpointAlgorithm(), values, graphs)
        assert _ensemble_fingerprint(sharded) == _ensemble_fingerprint(serial)

    def test_bad_repro_threads_raises(self, monkeypatch):
        from repro.config import resolve_threads
        from repro.exceptions import ConfigError

        for bad in ("zero", "0", "-2"):
            monkeypatch.setenv("REPRO_THREADS", bad)
            with pytest.raises(ConfigError):
                resolve_threads(None)


class TestAdversarialMerge:
    def test_adversarial_shards_merge_to_the_full_run(self):
        n, batch_size, rounds = 4, 7, 5
        values = _values(batch_size, n, seed=111)
        full = run_adversarial_ensemble(
            MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=n)),
            rounds, threads=1,
        )
        shards = [
            run_adversarial_ensemble(
                MidpointAlgorithm(), values[start:stop],
                GreedyDiameterAdversary(deaf_model(n=n)), rounds, threads=1,
            )
            for start, stop in shard_bounds(batch_size, 3)
        ]
        merged = merge_ensemble_executions(shards)
        assert _ensemble_fingerprint(merged) == _ensemble_fingerprint(full)
        for round_full, round_merged in zip(full.round_choices, merged.round_choices):
            assert len(round_merged) == len(round_full) == batch_size
            for choice_full, choice_merged in zip(round_full, round_merged):
                assert np.array_equal(choice_merged.adjacency, choice_full.adjacency)

    def test_mixed_adversarial_and_plain_shards_are_rejected(self):
        n = 4
        values = _values(4, n, seed=121)
        graphs = _graph_rounds(n, 4, 3, seed=122)
        plain = run_ensemble(MidpointAlgorithm(), values, graphs, threads=1)
        adversarial = run_adversarial_ensemble(
            MidpointAlgorithm(), values, GreedyDiameterAdversary(deaf_model(n=n)),
            3, threads=1,
        )
        with pytest.raises(ExecutionError, match="different routes"):
            merge_ensemble_executions([plain, adversarial])


class TestShardBounds:
    def test_balanced_partition_covers_the_range(self):
        for total in range(0, 40):
            for parts in range(1, 12):
                bounds = shard_bounds(total, parts)
                assert len(bounds) == min(parts, total)
                # Contiguous cover, longer shards first, sizes differ by <= 1.
                cursor = 0
                sizes = []
                for start, stop in bounds:
                    assert start == cursor
                    assert stop > start
                    sizes.append(stop - start)
                    cursor = stop
                assert cursor == total
                if sizes:
                    assert max(sizes) - min(sizes) <= 1
                    assert sizes == sorted(sizes, reverse=True)

    def test_known_splits(self):
        assert shard_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]
        assert shard_bounds(2, 7) == [(0, 1), (1, 2)]
        assert shard_bounds(0, 4) == []
        assert shard_bounds(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(5, 0)
