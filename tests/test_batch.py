"""Tests for the batched ensemble runner (repro.execution.batch)."""

import numpy as np
import pytest

from repro.algorithms import MeanAlgorithm, MidpointAlgorithm
from repro.algorithms.base import ConvexCombinationAlgorithm
from repro.exceptions import ExecutionError
from repro.execution import (
    run_ensemble,
    run_execution,
    run_pattern_ensemble,
    stack_initial_values,
    sweep,
)
from repro.graphs.families import complete_graph, cycle_graph, directed_star_graph
from repro.models.patterns import ConstantPattern, PeriodicPattern


class SlowMidpoint(ConvexCombinationAlgorithm):
    """A midpoint clone without combine_all, to exercise the fallback path."""

    def combine(self, agent_id, received, round_number):
        values = np.vstack(list(received.values()))
        return (values.min(axis=0) + values.max(axis=0)) / 2.0


def _values(batch, n, d, seed=0):
    return np.random.default_rng(seed).uniform(-1.0, 1.0, size=(batch, n, d))


class TestStackInitialValues:
    def test_scalar_scenarios_are_promoted(self):
        stacked = stack_initial_values([[0.0, 1.0], [2.0, 3.0]])
        assert stacked.shape == (2, 2, 1)

    def test_mismatched_scenarios_raise(self):
        with pytest.raises(ExecutionError):
            stack_initial_values([[0.0, 1.0], [0.0, 1.0, 2.0]])

    def test_empty_ensemble_raises(self):
        with pytest.raises(ExecutionError):
            stack_initial_values([])


class TestRunEnsemble:
    def test_shared_graphs_match_single_executions(self):
        batch, n, d, rounds = 4, 6, 2, 8
        values = _values(batch, n, d)
        pattern = PeriodicPattern([complete_graph(n), cycle_graph(n)])
        ensemble = run_pattern_ensemble(MidpointAlgorithm(), values, pattern, rounds)
        for b in range(batch):
            single = run_execution(MidpointAlgorithm(), values[b], pattern, rounds)
            for r, round_number in enumerate(ensemble.recorded_rounds):
                np.testing.assert_array_equal(
                    ensemble.recorded_outputs[r, b],
                    single.configuration(round_number).outputs,
                )

    def test_per_scenario_graphs(self):
        n, rounds = 5, 6
        values = _values(3, n, 1)
        sequences = [
            [complete_graph(n)] * rounds,
            [cycle_graph(n)] * rounds,
            [directed_star_graph(n)] * rounds,
        ]
        graph_rounds = [[sequences[b][t] for b in range(3)] for t in range(rounds)]
        ensemble = run_ensemble(MeanAlgorithm(), values, graph_rounds)
        for b in range(3):
            single = run_execution(
                MeanAlgorithm(), values[b], ConstantPattern(sequences[b][0]), rounds
            )
            np.testing.assert_allclose(
                ensemble.final_outputs[b], single.final_configuration.outputs,
                rtol=0.0, atol=1e-12,
            )

    def test_fallback_path_matches_fast_path(self):
        batch, n, rounds = 3, 5, 7
        values = _values(batch, n, 1, seed=4)
        pattern = PeriodicPattern([complete_graph(n), cycle_graph(n)])
        fast = run_pattern_ensemble(MidpointAlgorithm(), values, pattern, rounds)
        slow = run_pattern_ensemble(SlowMidpoint(), values, pattern, rounds)
        assert fast.recorded_rounds == slow.recorded_rounds
        np.testing.assert_array_equal(fast.recorded_outputs, slow.recorded_outputs)

    def test_record_every(self):
        values = _values(2, 4, 1)
        pattern = ConstantPattern(complete_graph(4))
        ensemble = run_pattern_ensemble(MidpointAlgorithm(), values, pattern, 7, record_every=3)
        assert ensemble.recorded_rounds == [0, 3, 6, 7]

    def test_wrong_scenario_count_raises(self):
        values = _values(2, 4, 1)
        with pytest.raises(ExecutionError):
            run_ensemble(MidpointAlgorithm(), values, [[complete_graph(4)]] )

    def test_graph_size_mismatch_raises(self):
        values = _values(2, 4, 1)
        with pytest.raises(ExecutionError):
            run_ensemble(MidpointAlgorithm(), values, [complete_graph(5)])


class TestEnsembleMetrics:
    def test_diameters_and_convergence_rounds(self):
        n = 4
        values = np.stack([
            np.linspace(0.0, 1.0, n).reshape(n, 1),
            np.linspace(0.0, 4.0, n).reshape(n, 1),
        ])
        ensemble = run_pattern_ensemble(
            MidpointAlgorithm(), values, ConstantPattern(complete_graph(n)), 3
        )
        diameters = ensemble.diameters()
        assert diameters.shape == (4, 2)
        np.testing.assert_allclose(diameters[0], [1.0, 4.0])
        np.testing.assert_allclose(diameters[1], [0.0, 0.0], atol=1e-12)
        assert list(ensemble.convergence_rounds(1e-9)) == [1, 1]
        assert ensemble.convergence_rounds(1e-9).shape == (2,)

    def test_outputs_at_round_raises_for_unrecorded_round(self):
        values = _values(2, 3, 1)
        ensemble = run_pattern_ensemble(
            MidpointAlgorithm(), values, ConstantPattern(complete_graph(3)), 6, record_every=2
        )
        with pytest.raises(ExecutionError):
            ensemble.outputs_at_round(3)


class TestSweep:
    def test_cross_product_labels_and_results(self):
        n, rounds = 4, 5
        grids = [np.linspace(0.0, 1.0, n), np.linspace(-1.0, 1.0, n)]
        patterns = [ConstantPattern(complete_graph(n)), ConstantPattern(cycle_graph(n))]
        result = sweep(MidpointAlgorithm(), grids, patterns, rounds)
        assert result.batch_size == 4
        assert result.scenario_labels == [(0, 0), (0, 1), (1, 0), (1, 1)]
        for b, (value_index, pattern_index) in enumerate(result.scenario_labels):
            single = run_execution(
                MidpointAlgorithm(), grids[value_index], patterns[pattern_index], rounds
            )
            np.testing.assert_array_equal(
                result.final_outputs[b], single.final_configuration.outputs
            )

    def test_single_pattern_is_broadcast(self):
        n = 3
        result = sweep(
            MidpointAlgorithm(),
            [[0.0, 1.0, 2.0], [5.0, 6.0, 7.0]],
            ConstantPattern(complete_graph(n)),
            rounds=2,
        )
        assert result.batch_size == 2
        assert result.scenario_labels == [(0, 0), (1, 0)]
